//! A minimal JSON value, writer, and parser.
//!
//! The build environment is offline, so trace artifacts are serialized
//! with this self-contained implementation instead of `serde`. Only the
//! subset the artifact format needs is supported: `null`, booleans,
//! 64-bit signed integers (no floats), strings, arrays, and objects with
//! deterministically ordered (`BTreeMap`) keys — determinism matters
//! because artifact files are compared byte-for-byte by the golden-corpus
//! regression tests.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A 64-bit signed integer (the format never uses floats).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Self {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// The value at object key `k`, if this is an object that has it.
    pub fn get(&self, k: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(k),
            _ => None,
        }
    }

    /// This value as an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline — the
    /// on-disk artifact format.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, 0);
        f.write_str(&out)
    }
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// [`ParseError`] on malformed input; floats are rejected.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floats are not part of the artifact format"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| self.err("integer out of range"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates never occur: the writer only
                            // emits \u for control characters.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj([
            ("version", Json::Int(1)),
            ("name", Json::Str("a \"quoted\"\nline".into())),
            (
                "items",
                Json::Arr(vec![Json::Int(-3), Json::Bool(true), Json::Null]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(BTreeMap::new())),
        ]);
        let text = v.pretty();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_stable() {
        let v = Json::obj([("b", Json::Int(2)), ("a", Json::Int(1))]);
        // BTreeMap ordering: keys render sorted regardless of insertion.
        assert_eq!(v.pretty(), "{\n  \"a\": 1,\n  \"b\": 2\n}\n");
    }

    #[test]
    fn rejects_floats_and_trailing_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("\u{0001}".into());
        let text = v.pretty();
        assert!(text.contains("\\u0001"));
        assert_eq!(parse(&text).unwrap(), v);
    }
}
