//! Failure forensics for the bounded CCAL checkers: counterexample
//! shrinking, trace artifacts, and deterministic replay.
//!
//! The paper's concurrent layer interfaces fail with a *witness*: an event
//! log that some adversarial environment context forces (§2.3). This crate
//! turns that witness into a durable, replayable artifact:
//!
//! 1. **Capture** — the checkers record every failing case (grid index,
//!    concrete machine log, reason) inside a
//!    [`ccal_core::forensics::CaptureScope`];
//! 2. **Reify** — [`ScriptedContext::from_log`] re-derives the
//!    environment's choices (schedule targets, per-player event batches)
//!    from the failing log;
//! 3. **Shrink** — [`shrink::shrink`] delta-debugs the scripted context to
//!    a 1-minimal counterexample, using a serial no-POR no-dedup re-run of
//!    the checker ([`registry::probe`]) as the oracle;
//! 4. **Serialize** — [`TraceArtifact`] writes the minimized witness as
//!    versioned, self-describing JSON ([`json`]/[`wire`] are hand-rolled:
//!    the container has no serde);
//! 5. **Replay** — [`registry::replay_artifact`] re-runs the artifact's
//!    context through the same checker and asserts a bit-identical verdict
//!    (reason, case detail, and first-failure log). The `ccal-replay`
//!    binary drives this over a corpus directory as a regression gate.
//!
//! The seeded-bug fixtures live in [`ccal_objects::buggy`]; the registry
//! binds each to its checker.

#![warn(missing_docs)]

pub mod artifact;
pub mod json;
pub mod registry;
pub mod scripted;
pub mod shrink;
pub mod wire;

pub use artifact::{ExpectedFailure, ReplayOptions, TraceArtifact, FORMAT_VERSION};
pub use registry::{all_fixtures, find, investigate, probe, replay_artifact, CaseFailure, Fixture, RunConfig};
pub use scripted::ScriptedContext;
pub use shrink::{one_minimal, one_removals, shrink as shrink_context, ShrinkOutcome};
