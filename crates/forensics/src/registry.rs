//! The fixture registry: checker runners, the probe oracle, and the full
//! investigate → shrink → artifact → replay pipeline.
//!
//! Each [`Fixture`] binds one seeded-bug object from
//! [`ccal_objects::buggy`] to the checker that detects it, behind a
//! uniform `runner` signature. [`probe`] runs a single scripted context
//! through the fixture's checker — serially, with POR and dedup disabled —
//! inside a capture scope, which is both the shrink oracle and the replay
//! engine. [`investigate`] runs the full context grid, reifies the
//! index-least failing case into a [`ScriptedContext`], delta-debugs it to
//! 1-minimal, and packages the result as a [`TraceArtifact`];
//! [`replay_artifact`] asserts a saved artifact still reproduces a
//! bit-identical verdict and first-failure log.

use ccal_core::env::EnvContext;
use ccal_core::forensics::{CaptureScope, ShrinkNote};
use ccal_core::id::{Pid, PidSet};
use ccal_core::log::Log;
use ccal_core::machine::LayerMachine;
use ccal_core::sim::{check_prim_refinement, SimOptions, SimRelation};
use ccal_objects::buggy;
use ccal_verifier::{
    check_linearizability_tuned, check_liveness_tuned, check_race_freedom_tuned,
    check_sequence_refinement_tuned, fifo_history_validator,
};

use crate::artifact::{ExpectedFailure, ReplayOptions, TraceArtifact, FORMAT_VERSION};
use crate::scripted::ScriptedContext;
use crate::shrink;

/// How a checker run is configured (the knobs forensics bypasses on
/// replay).
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Worker threads on the case grid.
    pub workers: usize,
    /// Upper-run memoization (sim only; ignored elsewhere).
    pub dedup: bool,
    /// Partial-order reduction.
    pub por: bool,
    /// Prefix-sharing of lower runs across contexts (see
    /// [`ccal_core::prefix`]).
    pub prefix_share: bool,
    /// Deep prefix-sharing: query-point snapshot forking (see
    /// [`ccal_core::prefix::SnapshotTrie`]). Effective only when
    /// `prefix_share` is on.
    pub deep_share: bool,
    /// Convergence dedup of execution states (see
    /// [`ccal_core::explore::Kernel::converged`]). Forced off on replay —
    /// a replay must *execute* the witness, never answer it from a cache.
    pub state_dedup: bool,
}

impl RunConfig {
    /// The replay configuration: serial, no dedup, no POR, no prefix
    /// sharing, no convergence dedup — every source of exploration-order
    /// variance off.
    #[must_use]
    pub fn replay() -> Self {
        Self {
            workers: 1,
            dedup: false,
            por: false,
            prefix_share: false,
            deep_share: false,
            state_dedup: false,
        }
    }
}

/// Installs a scoped process-wide convergence-dedup override matching
/// `cfg` for the checkers whose `_tuned` signatures don't expose the knob
/// (the flag is read at `ExploreOptions` construction time inside them).
/// No-op when the environment default already agrees.
fn state_dedup_guard(cfg: &RunConfig) -> Option<ccal_core::prefix::StateDedupOverride> {
    (cfg.state_dedup != ccal_core::prefix::state_dedup_enabled())
        .then(|| ccal_core::prefix::StateDedupOverride::force(cfg.state_dedup))
}

/// One failing case as captured from a checker run.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Index of the case in the checker's exploration grid.
    pub case_index: usize,
    /// The checker's case description (context/args/script indices).
    pub detail: String,
    /// The failure reason exactly as the checker reported it.
    pub reason: String,
    /// The first-failure log.
    pub log: Log,
}

/// A seeded-bug object bound to the checker that detects it.
pub struct Fixture {
    /// Checker id: `sim`, `live`, `linz`, `race`, `seqref`.
    pub checker: &'static str,
    /// Object id, unique within the checker.
    pub object: &'static str,
    /// The participant domain of the fixture's context family.
    pub domain: Vec<Pid>,
    /// The focused (program) participants — their events are re-emitted
    /// by the machine on replay, not scripted.
    pub focused: PidSet,
    /// Machine fuel the runner uses (part of the artifact fingerprint).
    pub machine_fuel: u64,
    /// The adversarial context family the checker explores.
    pub contexts: fn() -> Vec<EnvContext>,
    /// Runs the fixture's checker over a context slice. `Ok(())` = the
    /// check passed; `Err` = the first failure's reason.
    pub runner: fn(&[EnvContext], &RunConfig) -> Result<(), String>,
}

fn run_sim(contexts: &[EnvContext], cfg: &RunConfig) -> Result<(), String> {
    check_prim_refinement(
        &buggy::scratch_sensitive_lower(),
        "op",
        &buggy::scratch_sensitive_upper(),
        "op",
        &SimRelation::identity(),
        Pid(0),
        contexts,
        &[vec![]],
        &SimOptions::default()
            .with_workers(cfg.workers)
            .with_dedup(cfg.dedup)
            .with_por(cfg.por)
            .with_prefix_share(cfg.prefix_share)
            .with_deep_share(cfg.deep_share)
            .with_state_dedup(cfg.state_dedup),
    )
    .map(|_| ())
    .map_err(|f| f.reason)
}

fn run_live(contexts: &[EnvContext], cfg: &RunConfig) -> Result<(), String> {
    let _sd = state_dedup_guard(cfg);
    check_liveness_tuned(
        &buggy::impatient_waiter_iface(),
        "wait",
        &[],
        Pid(0),
        contexts,
        buggy::IMPATIENT_BOUND,
        buggy::IMPATIENT_FUEL,
        cfg.workers,
        cfg.por,
        cfg.prefix_share,
        cfg.deep_share,
    )
    .map(|_| ())
    .map_err(|e| e.to_string())
}

fn run_race(contexts: &[EnvContext], cfg: &RunConfig) -> Result<(), String> {
    let _sd = state_dedup_guard(cfg);
    check_race_freedom_tuned(
        &ccal_machine::mx86::mx86_hw_interface(),
        &PidSet::from_pids([Pid(0), Pid(1)]),
        &buggy::unlocked_pair_programs(),
        contexts,
        RACE_FUEL,
        cfg.workers,
        cfg.por,
        cfg.prefix_share,
        cfg.deep_share,
    )
    .map(|_| ())
    .map_err(|e| e.to_string())
}

fn run_linz(contexts: &[EnvContext], cfg: &RunConfig) -> Result<(), String> {
    let _sd = state_dedup_guard(cfg);
    check_linearizability_tuned(
        &buggy::lifo_queue_iface(),
        &PidSet::from_pids([Pid(0), Pid(1)]),
        &buggy::lifo_queue_programs(),
        &SimRelation::identity(),
        &*fifo_history_validator("deq"),
        contexts,
        LINZ_FUEL,
        cfg.workers,
        cfg.por,
        cfg.prefix_share,
        cfg.deep_share,
    )
    .map(|_| ())
    .map_err(|e| e.to_string())
}

fn run_seqref(contexts: &[EnvContext], cfg: &RunConfig) -> Result<(), String> {
    let _sd = state_dedup_guard(cfg);
    check_sequence_refinement_tuned(
        &buggy::env_leaky_counter_impl(),
        &buggy::env_leaky_counter_spec(),
        &SimRelation::identity(),
        Pid(0),
        contexts,
        &buggy::env_leaky_counter_scripts(),
        SEQREF_FUEL,
        cfg.workers,
        cfg.por,
        cfg.prefix_share,
        cfg.deep_share,
    )
    .map(|_| ())
    .map_err(|e| e.to_string())
}

const RACE_FUEL: u64 = 50_000;
const LINZ_FUEL: u64 = 100_000;
const SEQREF_FUEL: u64 = 100_000;

/// Every registered fixture, one per checker.
pub fn all_fixtures() -> Vec<Fixture> {
    vec![
        Fixture {
            checker: "sim",
            object: "scratch-sensitive",
            domain: vec![Pid(0), Pid(1), Pid(2)],
            focused: PidSet::singleton(Pid(0)),
            machine_fuel: LayerMachine::DEFAULT_FUEL,
            contexts: buggy::scratch_sensitive_contexts,
            runner: run_sim,
        },
        Fixture {
            checker: "live",
            object: "impatient-waiter",
            domain: vec![Pid(0), Pid(1)],
            focused: PidSet::singleton(Pid(0)),
            machine_fuel: buggy::IMPATIENT_FUEL,
            contexts: buggy::impatient_waiter_contexts,
            runner: run_live,
        },
        Fixture {
            checker: "race",
            object: "unlocked-pair",
            domain: vec![Pid(0), Pid(1)],
            focused: PidSet::from_pids([Pid(0), Pid(1)]),
            machine_fuel: RACE_FUEL,
            contexts: buggy::unlocked_pair_contexts,
            runner: run_race,
        },
        Fixture {
            checker: "linz",
            object: "lifo-queue",
            domain: vec![Pid(0), Pid(1), Pid(2)],
            focused: PidSet::from_pids([Pid(0), Pid(1)]),
            machine_fuel: LINZ_FUEL,
            contexts: buggy::lifo_queue_contexts,
            runner: run_linz,
        },
        Fixture {
            checker: "seqref",
            object: "env-leaky-counter",
            domain: vec![Pid(0), Pid(1)],
            focused: PidSet::singleton(Pid(0)),
            machine_fuel: SEQREF_FUEL,
            contexts: buggy::env_leaky_counter_contexts,
            runner: run_seqref,
        },
    ]
}

/// Looks a fixture up by checker and object id.
#[must_use]
pub fn find(checker: &str, object: &str) -> Option<Fixture> {
    all_fixtures()
        .into_iter()
        .find(|f| f.checker == checker && f.object == object)
}

/// Runs a single scripted context through the fixture's checker under the
/// replay configuration (serial, dedup and POR off) and returns the
/// captured failure, if any. A single-context grid explores exactly one
/// case per argument/script vector, so this is deterministic by
/// construction — it serves as both the shrink oracle and the replay
/// engine.
pub fn probe(fx: &Fixture, sc: &ScriptedContext) -> Option<CaseFailure> {
    let scope = CaptureScope::begin();
    let _ = (fx.runner)(&[sc.to_env()], &RunConfig::replay());
    scope
        .take()
        .into_iter()
        .min_by_key(|c| c.case_index)
        .map(|c| CaseFailure {
            case_index: c.case_index,
            detail: c.detail,
            reason: c.reason,
            log: c.log,
        })
}

/// Runs the fixture's full context grid under `cfg`, reifies the
/// index-least failing case, shrinks it to 1-minimal, and packages the
/// minimized witness as a [`TraceArtifact`] (with shrink accounting
/// embedded).
///
/// # Errors
///
/// If the checker unexpectedly passes, no capture is recorded, the
/// reified context fails to reproduce, or the shrunk context stops
/// failing.
pub fn investigate(fx: &Fixture, cfg: &RunConfig) -> Result<TraceArtifact, String> {
    let contexts = (fx.contexts)();
    let env_fuel = contexts.first().map_or(EnvContext::DEFAULT_FUEL, EnvContext::fuel);
    let scope = CaptureScope::begin();
    let verdict = (fx.runner)(&contexts, cfg);
    let captures = scope.take();
    if verdict.is_ok() {
        return Err(format!(
            "{}/{}: checker passed — nothing to investigate",
            fx.checker, fx.object
        ));
    }
    let first = captures
        .into_iter()
        .min_by_key(|c| c.case_index)
        .ok_or_else(|| {
            format!(
                "{}/{}: checker failed but recorded no capture",
                fx.checker, fx.object
            )
        })?;
    let reified = ScriptedContext::from_log(fx.domain.clone(), env_fuel, &fx.focused, &first.log);
    if probe(fx, &reified).is_none() {
        return Err(format!(
            "{}/{}: reified context does not reproduce the failure ({})",
            fx.checker, fx.object, first.reason
        ));
    }
    let original_steps = reified.steps();
    let outcome = shrink::shrink(&reified, &mut |sc| probe(fx, sc).is_some());
    let witness = probe(fx, &outcome.context).ok_or_else(|| {
        format!(
            "{}/{}: shrunk context no longer fails",
            fx.checker, fx.object
        )
    })?;
    let mut artifact = TraceArtifact {
        version: FORMAT_VERSION,
        checker: fx.checker.to_owned(),
        object: fx.object.to_owned(),
        options: ReplayOptions {
            machine_fuel: fx.machine_fuel,
            workers: 1,
            dedup: false,
            por: false,
            prefix_share: false,
            deep_share: false,
            // Record the tier the investigation actually ran under, so
            // the artifact is self-describing about its provenance.
            bytecode: ccal_core::prefix::bytecode_effective(),
            state_dedup: false,
            share_semantic: ccal_core::prefix::share_semantic_effective(),
        },
        context: outcome.context,
        expected: ExpectedFailure {
            reason: witness.reason,
            detail: witness.detail,
            log: witness.log,
        },
        shrink: ShrinkNote {
            checker: fx.checker.to_owned(),
            object: fx.object.to_owned(),
            original_steps,
            minimized_steps: 0, // filled below from the minimized context
            iterations: outcome.iterations + 2, // + reify probe + final probe
            artifact: String::new(),
        },
    };
    artifact.shrink.minimized_steps = artifact.context.steps();
    artifact.shrink.artifact = artifact.file_name();
    Ok(artifact)
}

/// Replays a trace artifact through its fixture's checker and asserts the
/// verdict is bit-identical: same failure reason, same case detail, same
/// first-failure log.
///
/// # Errors
///
/// On unknown fixtures, fingerprint mismatches, a passing replay, or any
/// verdict drift (with a description of the divergence).
pub fn replay_artifact(a: &TraceArtifact) -> Result<(), String> {
    let fx = find(&a.checker, &a.object)
        .ok_or_else(|| format!("unknown fixture {}/{}", a.checker, a.object))?;
    if a.options.machine_fuel != fx.machine_fuel {
        return Err(format!(
            "{}/{}: artifact fuel {} != fixture fuel {}",
            a.checker, a.object, a.options.machine_fuel, fx.machine_fuel
        ));
    }
    let got = probe(&fx, &a.context).ok_or_else(|| {
        format!(
            "{}/{}: replay PASSED but artifact expects failure `{}`",
            a.checker, a.object, a.expected.reason
        )
    })?;
    if got.reason != a.expected.reason {
        return Err(format!(
            "{}/{}: reason drift\n  expected: {}\n  got:      {}",
            a.checker, a.object, a.expected.reason, got.reason
        ));
    }
    if got.detail != a.expected.detail {
        return Err(format!(
            "{}/{}: case detail drift\n  expected: {}\n  got:      {}",
            a.checker, a.object, a.expected.detail, got.detail
        ));
    }
    if got.log != a.expected.log {
        return Err(format!(
            "{}/{}: first-failure log drift\n  expected: {}\n  got:      {}",
            a.checker, a.object, a.expected.log, got.log
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fixture_fails_its_checker() {
        for fx in all_fixtures() {
            let contexts = (fx.contexts)();
            assert!(
                (fx.runner)(&contexts, &RunConfig::replay()).is_err(),
                "{}/{} unexpectedly passed",
                fx.checker,
                fx.object
            );
        }
    }

    #[test]
    fn investigate_shrinks_and_replays_every_fixture() {
        for fx in all_fixtures() {
            let a = investigate(&fx, &RunConfig::replay())
                .unwrap_or_else(|e| panic!("investigate failed: {e}"));
            assert!(
                a.shrink.minimized_steps <= a.shrink.original_steps,
                "{}/{}: shrink grew the context",
                fx.checker,
                fx.object
            );
            replay_artifact(&a).unwrap_or_else(|e| panic!("replay failed: {e}"));
        }
    }

    #[test]
    fn minimized_contexts_are_one_minimal() {
        for fx in all_fixtures() {
            let a = investigate(&fx, &RunConfig::replay()).unwrap();
            assert!(
                shrink::one_minimal(&a.context, &mut |sc| probe(&fx, sc).is_some()),
                "{}/{}: minimized context is not 1-minimal",
                fx.checker,
                fx.object
            );
        }
    }

    #[test]
    fn replay_detects_reason_drift() {
        let fx = find("sim", "scratch-sensitive").unwrap();
        let mut a = investigate(&fx, &RunConfig::replay()).unwrap();
        a.expected.reason = "some other reason".into();
        let err = replay_artifact(&a).unwrap_err();
        assert!(err.contains("reason drift"), "{err}");
    }

    #[test]
    fn find_rejects_unknown_fixtures() {
        assert!(find("sim", "no-such-object").is_none());
        assert!(find("nope", "scratch-sensitive").is_none());
    }
}
