//! Scripted environment contexts — the serializable, shrinkable form of
//! an adversarial environment.
//!
//! A [`ScriptedContext`] is a finite description of an [`EnvContext`]:
//! an explicit schedule prefix (completed by fair round-robin, exactly as
//! [`ScriptScheduler`] does) plus per-player event batches (played in
//! turn order, exactly as [`ScriptPlayer`] does). It is *reified* from a
//! failing run's log ([`ScriptedContext::from_log`]), delta-debugged by
//! [`crate::shrink`], serialized into trace artifacts by
//! [`crate::artifact`], and turned back into a live [`EnvContext`] by
//! [`ScriptedContext::to_env`] for deterministic replay.

use std::collections::BTreeMap;
use std::sync::Arc;

use ccal_core::env::EnvContext;
use ccal_core::event::Event;
use ccal_core::id::{Pid, PidSet};
use ccal_core::log::Log;
use ccal_core::strategy::{ScriptPlayer, ScriptScheduler};

use crate::json::Json;
use crate::wire::{self, WireError};

/// A finite, serializable environment context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptedContext {
    /// The participant domain (the round-robin fallback order once the
    /// schedule script runs dry).
    pub domain: Vec<Pid>,
    /// The query-process fuel of the reconstructed context.
    pub env_fuel: u64,
    /// The scheduling script: the `i`-th scheduling event targets
    /// `schedule[i]`; beyond the script the scheduler falls back to fair
    /// round-robin over `domain`.
    pub schedule: Vec<Pid>,
    /// Per-player scripts: `players[p][k]` is the event batch participant
    /// `p` plays on its `k`-th turn (empty batch = idle that turn).
    pub players: BTreeMap<Pid, Vec<Vec<Event>>>,
}

impl ScriptedContext {
    /// Builds the live context this script describes.
    pub fn to_env(&self) -> EnvContext {
        let mut env = EnvContext::new(Arc::new(ScriptScheduler::new(
            self.schedule.clone(),
            self.domain.clone(),
        )))
        .with_fuel(self.env_fuel);
        for (pid, batches) in &self.players {
            env = env.with_player(*pid, Arc::new(ScriptPlayer::new(*pid, batches.clone())));
        }
        env
    }

    /// Reifies the environment choices out of a failing run's log: the
    /// schedule is the sequence of scheduling targets, and each
    /// environment participant's events during its own turns become its
    /// scripted batches. Events authored by environment pids *outside*
    /// their own turns (handoff events appended by the machine during a
    /// focused turn) are excluded — the replaying machine re-emits them
    /// itself.
    pub fn from_log(domain: Vec<Pid>, env_fuel: u64, focused: &PidSet, log: &Log) -> Self {
        let mut schedule = Vec::new();
        let mut players: BTreeMap<Pid, Vec<Vec<Event>>> = BTreeMap::new();
        let mut turns: BTreeMap<Pid, usize> = BTreeMap::new();
        let mut current: Option<Pid> = None;
        for e in log.iter() {
            if let ccal_core::event::EventKind::HwSched(target) = e.kind {
                schedule.push(target);
                *turns.entry(target).or_default() += 1;
                current = Some(target);
                // Every environment participant's turn gets a batch slot,
                // so batch index k lines up with the k-th sched to it
                // even when some turns are silent.
                if !focused.contains(target) {
                    players.entry(target).or_default().push(Vec::new());
                }
                continue;
            }
            if focused.contains(e.pid) {
                continue; // the machine re-emits focused events
            }
            if current == Some(e.pid) {
                if let Some(batches) = players.get_mut(&e.pid) {
                    if let Some(batch) = batches.last_mut() {
                        batch.push(e.clone());
                    }
                }
            }
            // else: handoff event during another participant's turn —
            // appended by the machine, not chosen by this player.
        }
        // Players whose every turn was silent add nothing: drop them.
        players.retain(|_, batches| batches.iter().any(|b| !b.is_empty()));
        Self {
            domain,
            env_fuel,
            schedule,
            players,
        }
    }

    /// The size measure shrinking minimizes: schedule slots plus scripted
    /// environment events.
    pub fn steps(&self) -> usize {
        self.schedule.len()
            + self
                .players
                .values()
                .flat_map(|batches| batches.iter())
                .map(Vec::len)
                .sum::<usize>()
    }

    /// Encodes into the artifact's JSON form.
    pub fn encode(&self) -> Json {
        Json::obj([
            (
                "domain",
                Json::Arr(
                    self.domain
                        .iter()
                        .map(|p| Json::Int(i64::from(p.0)))
                        .collect(),
                ),
            ),
            ("env_fuel", Json::Int(self.env_fuel as i64)),
            (
                "schedule",
                Json::Arr(
                    self.schedule
                        .iter()
                        .map(|p| Json::Int(i64::from(p.0)))
                        .collect(),
                ),
            ),
            (
                "players",
                Json::Arr(
                    self.players
                        .iter()
                        .map(|(pid, batches)| {
                            Json::obj([
                                ("pid", Json::Int(i64::from(pid.0))),
                                (
                                    "batches",
                                    Json::Arr(
                                        batches
                                            .iter()
                                            .map(|b| {
                                                Json::Arr(
                                                    b.iter().map(wire::encode_event).collect(),
                                                )
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes from the artifact's JSON form.
    ///
    /// # Errors
    ///
    /// [`WireError`] on shape mismatches.
    pub fn decode(j: &Json) -> Result<Self, WireError> {
        let pid_arr = |field: &str| -> Result<Vec<Pid>, WireError> {
            j.get(field)
                .and_then(Json::as_arr)
                .ok_or_else(|| WireError(format!("context missing `{field}` array")))?
                .iter()
                .map(|v| {
                    v.as_int()
                        .and_then(|n| u32::try_from(n).ok())
                        .map(Pid)
                        .ok_or_else(|| WireError(format!("bad pid in `{field}`: {v}")))
                })
                .collect()
        };
        let domain = pid_arr("domain")?;
        let schedule = pid_arr("schedule")?;
        let env_fuel = j
            .get("env_fuel")
            .and_then(Json::as_int)
            .and_then(|n| u64::try_from(n).ok())
            .ok_or_else(|| WireError("context missing `env_fuel`".into()))?;
        let mut players = BTreeMap::new();
        for pj in j
            .get("players")
            .and_then(Json::as_arr)
            .ok_or_else(|| WireError("context missing `players` array".into()))?
        {
            let pid = pj
                .get("pid")
                .and_then(Json::as_int)
                .and_then(|n| u32::try_from(n).ok())
                .map(Pid)
                .ok_or_else(|| WireError(format!("player missing pid: {pj}")))?;
            let batches = pj
                .get("batches")
                .and_then(Json::as_arr)
                .ok_or_else(|| WireError(format!("player missing batches: {pj}")))?
                .iter()
                .map(|bj| {
                    bj.as_arr()
                        .ok_or_else(|| WireError(format!("batch is not an array: {bj}")))?
                        .iter()
                        .map(wire::decode_event)
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<Vec<_>, _>>()?;
            players.insert(pid, batches);
        }
        Ok(Self {
            domain,
            env_fuel,
            schedule,
            players,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_core::event::EventKind;
    use ccal_core::id::Loc;
    use ccal_core::val::Val;

    fn ev(pid: u32, kind: EventKind) -> Event {
        Event::new(Pid(pid), kind)
    }

    #[test]
    fn reifies_schedule_and_player_batches() {
        // p0 focused; p1 plays two events on its first turn, none on its
        // second; a p1-authored handoff event during p0's turn is dropped.
        let log = Log::from_events([
            Event::sched(Pid(1)),
            ev(1, EventKind::Pull(Loc(5))),
            ev(1, EventKind::Push(Loc(5), Val::Int(0))),
            Event::sched(Pid(0)),
            ev(0, EventKind::Prim("op".into(), vec![])),
            ev(1, EventKind::Push(Loc(9), Val::Int(7))), // handoff
            Event::sched(Pid(1)),
            Event::sched(Pid(0)),
        ]);
        let sc = ScriptedContext::from_log(
            vec![Pid(0), Pid(1)],
            100,
            &PidSet::singleton(Pid(0)),
            &log,
        );
        assert_eq!(sc.schedule, vec![Pid(1), Pid(0), Pid(1), Pid(0)]);
        assert_eq!(
            sc.players[&Pid(1)],
            vec![
                vec![
                    ev(1, EventKind::Pull(Loc(5))),
                    ev(1, EventKind::Push(Loc(5), Val::Int(0))),
                ],
                vec![],
            ]
        );
        assert_eq!(sc.steps(), 4 + 2);
    }

    #[test]
    fn silent_players_are_dropped() {
        let log = Log::from_events([Event::sched(Pid(1)), Event::sched(Pid(0))]);
        let sc = ScriptedContext::from_log(
            vec![Pid(0), Pid(1)],
            100,
            &PidSet::singleton(Pid(0)),
            &log,
        );
        assert!(sc.players.is_empty());
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut players = BTreeMap::new();
        players.insert(
            Pid(2),
            vec![vec![ev(2, EventKind::Push(Loc(50), Val::Int(1)))], vec![]],
        );
        let sc = ScriptedContext {
            domain: vec![Pid(0), Pid(1), Pid(2)],
            env_fuel: 10_000,
            schedule: vec![Pid(2), Pid(0)],
            players,
        };
        let text = sc.encode().pretty();
        let back = ScriptedContext::decode(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, sc);
    }

    #[test]
    fn to_env_replays_the_script() {
        // The reconstructed context must drive a query process through
        // the same env events the script records.
        let mut players = BTreeMap::new();
        players.insert(
            Pid(1),
            vec![vec![ev(1, EventKind::Push(Loc(5), Val::Int(3)))]],
        );
        let sc = ScriptedContext {
            domain: vec![Pid(0), Pid(1)],
            env_fuel: 100,
            schedule: vec![Pid(1), Pid(0)],
            players,
        };
        let env = sc.to_env();
        let mut log = Log::new();
        let got = env
            .extend_until_focused(&PidSet::singleton(Pid(0)), &mut log)
            .unwrap();
        assert_eq!(got, Pid(0));
        assert_eq!(
            log.iter().filter(|e| !e.is_sched()).cloned().collect::<Vec<_>>(),
            vec![ev(1, EventKind::Push(Loc(5), Val::Int(3)))]
        );
    }
}
