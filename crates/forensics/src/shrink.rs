//! Delta debugging of scripted contexts.
//!
//! Given a failing [`ScriptedContext`] and an oracle ("does this context
//! still make the checker fail?"), [`shrink`] minimizes it in two phases:
//!
//! 1. **Chunk removal** (classic ddmin complements) over the schedule and
//!    over each player's batch list — cheap large strides first;
//! 2. **Single-atom fixpoint**: repeatedly try every single-atom removal
//!    (one schedule slot, one whole batch, or one event inside a batch)
//!    and restart on success, until a full pass makes no progress.
//!
//! The result is *1-minimal*: removing any single atom no longer fails
//! ([`one_minimal`] re-verifies exactly that, and the property tests
//! assert it). The oracle accepts *any* failure — the failure reason is
//! allowed to drift during shrinking (e.g. an over-budget liveness run
//! degrading to starvation once its feeder events are removed), which is
//! standard delta-debugging behavior; the artifact records the minimized
//! context's actual reason.

use crate::scripted::ScriptedContext;

/// The result of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized context.
    pub context: ScriptedContext,
    /// Oracle invocations spent.
    pub iterations: usize,
}

/// Every context reachable by removing exactly one atom: a schedule slot,
/// a whole player batch, or a single event within a batch.
pub fn one_removals(sc: &ScriptedContext) -> Vec<ScriptedContext> {
    let mut out = Vec::new();
    for i in 0..sc.schedule.len() {
        let mut v = sc.clone();
        v.schedule.remove(i);
        out.push(v);
    }
    for (pid, batches) in &sc.players {
        for j in 0..batches.len() {
            let mut v = sc.clone();
            let b = v.players.get_mut(pid).unwrap();
            b.remove(j);
            if b.iter().all(Vec::is_empty) {
                v.players.remove(pid);
            }
            out.push(v);
            for k in 0..batches[j].len() {
                let mut v = sc.clone();
                let b = v.players.get_mut(pid).unwrap();
                b[j].remove(k);
                if b.iter().all(Vec::is_empty) {
                    v.players.remove(pid);
                }
                out.push(v);
            }
        }
    }
    out
}

/// Whether `sc` is 1-minimal for `oracle`: the context itself fails and
/// no single-atom removal still fails.
pub fn one_minimal(sc: &ScriptedContext, oracle: &mut dyn FnMut(&ScriptedContext) -> bool) -> bool {
    oracle(sc) && one_removals(sc).iter().all(|v| !oracle(v))
}

/// Classic ddmin complement reduction of one list dimension. `rebuild`
/// turns a candidate sublist into a full context; returns the reduced
/// list (every prefix of the reduction kept the oracle failing).
fn ddmin_list<T: Clone>(
    items: Vec<T>,
    rebuild: &dyn Fn(Vec<T>) -> ScriptedContext,
    oracle: &mut dyn FnMut(&ScriptedContext) -> bool,
    iterations: &mut usize,
) -> Vec<T> {
    let mut cur = items;
    let mut n = 2_usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let candidate: Vec<T> = cur[..start]
                .iter()
                .chain(cur[end..].iter())
                .cloned()
                .collect();
            *iterations += 1;
            if oracle(&rebuild(candidate.clone())) {
                cur = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }
    cur
}

/// Minimizes a failing scripted context to a 1-minimal one.
///
/// # Panics
///
/// Debug-asserts that `sc` itself fails the oracle; on release builds a
/// passing input is returned unchanged after one oracle call.
pub fn shrink(
    sc: &ScriptedContext,
    oracle: &mut dyn FnMut(&ScriptedContext) -> bool,
) -> ShrinkOutcome {
    let mut iterations = 1;
    if !oracle(sc) {
        debug_assert!(false, "shrink called on a non-failing context");
        return ShrinkOutcome {
            context: sc.clone(),
            iterations,
        };
    }
    let mut cur = sc.clone();

    // Phase 1a: chunk-reduce the schedule.
    let base = cur.clone();
    cur.schedule = ddmin_list(
        cur.schedule.clone(),
        &|schedule| {
            let mut v = base.clone();
            v.schedule = schedule;
            v
        },
        oracle,
        &mut iterations,
    );

    // Phase 1b: chunk-reduce each player's batch list.
    let pids: Vec<_> = cur.players.keys().copied().collect();
    for pid in pids {
        let base = cur.clone();
        let batches = cur.players[&pid].clone();
        let reduced = ddmin_list(
            batches,
            &|batches| {
                let mut v = base.clone();
                if batches.iter().all(Vec::is_empty) {
                    v.players.remove(&pid);
                } else {
                    v.players.insert(pid, batches);
                }
                v
            },
            oracle,
            &mut iterations,
        );
        if reduced.iter().all(Vec::is_empty) {
            cur.players.remove(&pid);
        } else {
            cur.players.insert(pid, reduced);
        }
    }

    // Phase 2: single-atom fixpoint across every dimension jointly.
    'fixpoint: loop {
        for v in one_removals(&cur) {
            iterations += 1;
            if oracle(&v) {
                cur = v;
                continue 'fixpoint;
            }
        }
        break;
    }

    ShrinkOutcome {
        context: cur,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_core::event::{Event, EventKind};
    use ccal_core::id::{Loc, Pid};
    use ccal_core::val::Val;
    use std::collections::BTreeMap;

    fn push(pid: u32, loc: u32, v: i64) -> Event {
        Event::new(Pid(pid), EventKind::Push(Loc(loc), Val::Int(v)))
    }

    /// Oracle: fails iff some batch of p1 contains a push to Loc(50) AND
    /// the schedule contains at least one slot targeting p1 (monotone in
    /// both dimensions).
    fn oracle(sc: &ScriptedContext) -> bool {
        let has_push = sc
            .players
            .get(&Pid(1))
            .is_some_and(|batches| {
                batches.iter().flatten().any(
                    |e| matches!(e.kind, EventKind::Push(l, _) if l == Loc(50)),
                )
            });
        has_push && sc.schedule.contains(&Pid(1))
    }

    fn big_context() -> ScriptedContext {
        let mut players = BTreeMap::new();
        players.insert(
            Pid(1),
            vec![
                vec![push(1, 40, 0), push(1, 50, 1), push(1, 41, 2)],
                vec![push(1, 42, 3)],
                vec![],
            ],
        );
        players.insert(Pid(2), vec![vec![push(2, 60, 0), push(2, 61, 1)]]);
        ScriptedContext {
            domain: vec![Pid(0), Pid(1), Pid(2)],
            env_fuel: 100,
            schedule: vec![Pid(1), Pid(2), Pid(0), Pid(1), Pid(2), Pid(0)],
            players,
        }
    }

    #[test]
    fn shrinks_to_the_monotone_core() {
        let sc = big_context();
        let out = shrink(&sc, &mut oracle);
        assert!(oracle(&out.context), "shrunk context must still fail");
        // Exactly one schedule slot (p1) and one event (the push to 50).
        assert_eq!(out.context.schedule, vec![Pid(1)]);
        assert_eq!(
            out.context
                .players
                .values()
                .flatten()
                .flatten()
                .cloned()
                .collect::<Vec<_>>(),
            vec![push(1, 50, 1)]
        );
        assert_eq!(out.context.steps(), 2);
        assert!(out.iterations > 0);
    }

    #[test]
    fn result_is_one_minimal() {
        let sc = big_context();
        let out = shrink(&sc, &mut |c| oracle(c));
        assert!(one_minimal(&out.context, &mut |c| oracle(c)));
    }

    #[test]
    fn one_removals_counts_every_atom() {
        let sc = big_context();
        // 6 schedule slots + (3 batches + 4 events) for p1 + (1 batch +
        // 2 events) for p2.
        assert_eq!(one_removals(&sc).len(), 6 + 3 + 4 + 1 + 2);
    }
}
