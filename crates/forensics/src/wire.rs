//! Wire encoding of core values and events into [`Json`].
//!
//! The artifact format is self-describing: values are tagged
//! (`{"t": "Int", "v": 5}`) and events carry their kind name plus only
//! the operand fields that kind uses (`loc`, `pid2`, `q`, `val`, `name`,
//! `args`). Every [`EventKind`] variant round-trips — the regression test
//! below enumerates all of them.

use ccal_core::event::{Event, EventKind};
use ccal_core::id::{Loc, Pid, QId};
use ccal_core::log::Log;
use ccal_core::val::Val;

use crate::json::Json;

/// A decode error naming the offending fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "artifact decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn bad(what: &str, j: &Json) -> WireError {
    WireError(format!("{what}: {j}"))
}

/// Encodes a value, tagged by variant.
pub fn encode_val(v: &Val) -> Json {
    match v {
        Val::Undef => Json::obj([("t", Json::Str("Undef".into()))]),
        Val::Unit => Json::obj([("t", Json::Str("Unit".into()))]),
        Val::Int(n) => Json::obj([("t", Json::Str("Int".into())), ("v", Json::Int(*n))]),
        Val::Bool(b) => Json::obj([("t", Json::Str("Bool".into())), ("v", Json::Bool(*b))]),
        Val::Loc(Loc(l)) => Json::obj([
            ("t", Json::Str("Loc".into())),
            ("v", Json::Int(i64::from(*l))),
        ]),
        Val::Str(s) => Json::obj([("t", Json::Str("Str".into())), ("v", Json::Str(s.clone()))]),
        Val::List(items) => Json::obj([
            ("t", Json::Str("List".into())),
            ("v", Json::Arr(items.iter().map(encode_val).collect())),
        ]),
    }
}

/// Decodes a value.
///
/// # Errors
///
/// [`WireError`] on unknown tags or missing operands.
pub fn decode_val(j: &Json) -> Result<Val, WireError> {
    let tag = j
        .get("t")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("value without tag", j))?;
    let v = j.get("v");
    match tag {
        "Undef" => Ok(Val::Undef),
        "Unit" => Ok(Val::Unit),
        "Int" => v
            .and_then(Json::as_int)
            .map(Val::Int)
            .ok_or_else(|| bad("Int without integer operand", j)),
        "Bool" => v
            .and_then(Json::as_bool)
            .map(Val::Bool)
            .ok_or_else(|| bad("Bool without bool operand", j)),
        "Loc" => v
            .and_then(Json::as_int)
            .and_then(|n| u32::try_from(n).ok())
            .map(|n| Val::Loc(Loc(n)))
            .ok_or_else(|| bad("Loc without u32 operand", j)),
        "Str" => v
            .and_then(Json::as_str)
            .map(|s| Val::Str(s.to_owned()))
            .ok_or_else(|| bad("Str without string operand", j)),
        "List" => v
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("List without array operand", j))?
            .iter()
            .map(decode_val)
            .collect::<Result<Vec<_>, _>>()
            .map(Val::List),
        _ => Err(bad("unknown value tag", j)),
    }
}

fn u32_field(j: &Json, field: &str) -> Result<u32, WireError> {
    j.get(field)
        .and_then(Json::as_int)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| bad(&format!("event missing u32 `{field}`"), j))
}

fn val_field(j: &Json, field: &str) -> Result<Val, WireError> {
    decode_val(
        j.get(field)
            .ok_or_else(|| bad(&format!("event missing `{field}`"), j))?,
    )
}

/// Encodes one event: author pid, kind name, and the operands that kind
/// uses.
pub fn encode_event(e: &Event) -> Json {
    use EventKind::*;
    let mut pairs: Vec<(&'static str, Json)> = vec![("pid", Json::Int(i64::from(e.pid.0)))];
    let kind = |k: &str| Json::Str(k.to_owned());
    let loc = |l: Loc| Json::Int(i64::from(l.0));
    let q = |q: QId| Json::Int(i64::from(q.0));
    match &e.kind {
        HwSched(p) => {
            pairs.push(("k", kind("HwSched")));
            pairs.push(("pid2", Json::Int(i64::from(p.0))));
        }
        Pull(b) => {
            pairs.push(("k", kind("Pull")));
            pairs.push(("loc", loc(*b)));
        }
        Push(b, v) => {
            pairs.push(("k", kind("Push")));
            pairs.push(("loc", loc(*b)));
            pairs.push(("val", encode_val(v)));
        }
        FaiT(b) => {
            pairs.push(("k", kind("FaiT")));
            pairs.push(("loc", loc(*b)));
        }
        GetN(b) => {
            pairs.push(("k", kind("GetN")));
            pairs.push(("loc", loc(*b)));
        }
        IncN(b) => {
            pairs.push(("k", kind("IncN")));
            pairs.push(("loc", loc(*b)));
        }
        Hold(b) => {
            pairs.push(("k", kind("Hold")));
            pairs.push(("loc", loc(*b)));
        }
        Acq(b) => {
            pairs.push(("k", kind("Acq")));
            pairs.push(("loc", loc(*b)));
        }
        Rel(b) => {
            pairs.push(("k", kind("Rel")));
            pairs.push(("loc", loc(*b)));
        }
        McsSwap(b) => {
            pairs.push(("k", kind("McsSwap")));
            pairs.push(("loc", loc(*b)));
        }
        McsCasTail(b) => {
            pairs.push(("k", kind("McsCasTail")));
            pairs.push(("loc", loc(*b)));
        }
        McsSetNext(b, p) => {
            pairs.push(("k", kind("McsSetNext")));
            pairs.push(("loc", loc(*b)));
            pairs.push(("pid2", Json::Int(i64::from(p.0))));
        }
        McsGetLocked(b) => {
            pairs.push(("k", kind("McsGetLocked")));
            pairs.push(("loc", loc(*b)));
        }
        McsGrant(b, p) => {
            pairs.push(("k", kind("McsGrant")));
            pairs.push(("loc", loc(*b)));
            pairs.push(("pid2", Json::Int(i64::from(p.0))));
        }
        EnQ(qi, v) => {
            pairs.push(("k", kind("EnQ")));
            pairs.push(("q", q(*qi)));
            pairs.push(("val", encode_val(v)));
        }
        DeQ(qi) => {
            pairs.push(("k", kind("DeQ")));
            pairs.push(("q", q(*qi)));
        }
        Yield => pairs.push(("k", kind("Yield"))),
        Sleep(qi, lk) => {
            pairs.push(("k", kind("Sleep")));
            pairs.push(("q", q(*qi)));
            pairs.push(("loc", loc(*lk)));
        }
        Wakeup(qi) => {
            pairs.push(("k", kind("Wakeup")));
            pairs.push(("q", q(*qi)));
        }
        AcqQ(b) => {
            pairs.push(("k", kind("AcqQ")));
            pairs.push(("loc", loc(*b)));
        }
        RelQ(b) => {
            pairs.push(("k", kind("RelQ")));
            pairs.push(("loc", loc(*b)));
        }
        CvWait(qi) => {
            pairs.push(("k", kind("CvWait")));
            pairs.push(("q", q(*qi)));
        }
        CvSignal(qi) => {
            pairs.push(("k", kind("CvSignal")));
            pairs.push(("q", q(*qi)));
        }
        CvBroadcast(qi) => {
            pairs.push(("k", kind("CvBroadcast")));
            pairs.push(("q", q(*qi)));
        }
        IpcSend(qi, v) => {
            pairs.push(("k", kind("IpcSend")));
            pairs.push(("q", q(*qi)));
            pairs.push(("val", encode_val(v)));
        }
        IpcRecv(qi) => {
            pairs.push(("k", kind("IpcRecv")));
            pairs.push(("q", q(*qi)));
        }
        Prim(name, args) => {
            pairs.push(("k", kind("Prim")));
            pairs.push(("name", Json::Str(name.clone())));
            pairs.push(("args", Json::Arr(args.iter().map(encode_val).collect())));
        }
    }
    Json::obj(pairs)
}

/// Decodes one event.
///
/// # Errors
///
/// [`WireError`] on unknown kinds or missing operands.
pub fn decode_event(j: &Json) -> Result<Event, WireError> {
    use EventKind::*;
    let pid = Pid(u32_field(j, "pid")?);
    let k = j
        .get("k")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("event without kind", j))?;
    let loc = || u32_field(j, "loc").map(Loc);
    let pid2 = || u32_field(j, "pid2").map(Pid);
    let q = || u32_field(j, "q").map(QId);
    let kind = match k {
        "HwSched" => HwSched(pid2()?),
        "Pull" => Pull(loc()?),
        "Push" => Push(loc()?, val_field(j, "val")?),
        "FaiT" => FaiT(loc()?),
        "GetN" => GetN(loc()?),
        "IncN" => IncN(loc()?),
        "Hold" => Hold(loc()?),
        "Acq" => Acq(loc()?),
        "Rel" => Rel(loc()?),
        "McsSwap" => McsSwap(loc()?),
        "McsCasTail" => McsCasTail(loc()?),
        "McsSetNext" => McsSetNext(loc()?, pid2()?),
        "McsGetLocked" => McsGetLocked(loc()?),
        "McsGrant" => McsGrant(loc()?, pid2()?),
        "EnQ" => EnQ(q()?, val_field(j, "val")?),
        "DeQ" => DeQ(q()?),
        "Yield" => Yield,
        "Sleep" => Sleep(q()?, loc()?),
        "Wakeup" => Wakeup(q()?),
        "AcqQ" => AcqQ(loc()?),
        "RelQ" => RelQ(loc()?),
        "CvWait" => CvWait(q()?),
        "CvSignal" => CvSignal(q()?),
        "CvBroadcast" => CvBroadcast(q()?),
        "IpcSend" => IpcSend(q()?, val_field(j, "val")?),
        "IpcRecv" => IpcRecv(q()?),
        "Prim" => {
            let name = j
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("Prim without name", j))?
                .to_owned();
            let args = j
                .get("args")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("Prim without args", j))?
                .iter()
                .map(decode_val)
                .collect::<Result<Vec<_>, _>>()?;
            Prim(name, args)
        }
        _ => return Err(bad("unknown event kind", j)),
    };
    Ok(Event::new(pid, kind))
}

/// Encodes a log as an event array.
pub fn encode_log(log: &Log) -> Json {
    Json::Arr(log.iter().map(encode_event).collect())
}

/// Decodes a log.
///
/// # Errors
///
/// [`WireError`] as [`decode_event`].
pub fn decode_log(j: &Json) -> Result<Log, WireError> {
    let events = j
        .as_arr()
        .ok_or_else(|| bad("log is not an array", j))?
        .iter()
        .map(decode_event)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Log::from_events(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        use EventKind::*;
        let p = Pid(3);
        let b = Loc(7);
        let qi = QId(2);
        let v = Val::List(vec![
            Val::Undef,
            Val::Unit,
            Val::Int(-9),
            Val::Bool(true),
            Val::Loc(Loc(1)),
            Val::Str("s\"x\n".into()),
        ]);
        [
            HwSched(Pid(1)),
            Pull(b),
            Push(b, v.clone()),
            FaiT(b),
            GetN(b),
            IncN(b),
            Hold(b),
            Acq(b),
            Rel(b),
            McsSwap(b),
            McsCasTail(b),
            McsSetNext(b, Pid(4)),
            McsGetLocked(b),
            McsGrant(b, Pid(5)),
            EnQ(qi, Val::Int(10)),
            DeQ(qi),
            Yield,
            Sleep(qi, b),
            Wakeup(qi),
            AcqQ(b),
            RelQ(b),
            CvWait(qi),
            CvSignal(qi),
            CvBroadcast(qi),
            IpcSend(qi, Val::Int(1)),
            IpcRecv(qi),
            Prim("op".into(), vec![v]),
        ]
        .into_iter()
        .map(|k| Event::new(p, k))
        .collect()
    }

    #[test]
    fn every_event_kind_round_trips() {
        for e in sample_events() {
            let j = encode_event(&e);
            let text = j.pretty();
            let back = decode_event(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, e, "round trip failed for {e}");
        }
    }

    #[test]
    fn logs_round_trip() {
        let log = Log::from_events(sample_events());
        let j = encode_log(&log);
        assert_eq!(decode_log(&j).unwrap(), log);
    }

    #[test]
    fn decode_rejects_unknown_kind() {
        let j = crate::json::parse(r#"{"pid": 0, "k": "Warp"}"#).unwrap();
        assert!(decode_event(&j).is_err());
    }
}
