//! Tier differential over the forensics pipeline: the seeded-bug
//! fixtures must produce the same verdicts, the same captured failing
//! cases (index, detail, reason, log — byte for byte; full list on the
//! serial engine, the deterministic index-least case under parallel
//! workers) and the same minimized artifacts whether ClightX primitives
//! run on the bytecode VM or the interpreter. The fixtures' objects are
//! strategy-backed, so the tier flag must be *inert* here — this is the
//! guard that flipping the execution tier perturbs nothing outside
//! ClightX dispatch.

use std::sync::Mutex;

use ccal_core::forensics::CaptureScope;
use ccal_core::prefix::BytecodeOverride;
use ccal_forensics::{all_fixtures, investigate, RunConfig};

/// The tier override is process-global; serialize every flip.
static TIER_LOCK: Mutex<()> = Mutex::new(());

fn both_tiers<T, F>(f: F) -> T
where
    T: PartialEq + std::fmt::Debug,
    F: Fn() -> T,
{
    let _serial = TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let on = {
        let _tier = BytecodeOverride::force(true);
        f()
    };
    let off = {
        let _tier = BytecodeOverride::force(false);
        f()
    };
    assert_eq!(on, off, "compiled and interpreted tiers diverged");
    on
}

fn config_grid() -> Vec<RunConfig> {
    vec![
        RunConfig {
            workers: 1,
            dedup: false,
            por: false,
            prefix_share: false,
            deep_share: false,
            state_dedup: false,
        },
        RunConfig {
            workers: 2,
            dedup: true,
            por: true,
            prefix_share: true,
            deep_share: false,
            state_dedup: false,
        },
        RunConfig {
            workers: 2,
            dedup: true,
            por: true,
            prefix_share: true,
            deep_share: true,
            state_dedup: true,
        },
    ]
}

#[test]
fn fixture_verdicts_and_captures_are_tier_invariant() {
    for fx in all_fixtures() {
        for cfg in config_grid() {
            let (verdict, captured, first) = both_tiers(|| {
                let scope = CaptureScope::begin();
                let verdict = (fx.runner)(&(fx.contexts)(), &cfg);
                let captures = scope.take();
                // The engine's determinism contract covers the verdict
                // and the *index-least* failing case. With parallel
                // workers, which later failing cases were already
                // in-flight when the first failure short-circuited the
                // queue is thread-timing — not a tier property — so only
                // the serial config pins the full capture list.
                let canonical = if cfg.workers == 1 {
                    format!("{captures:?}")
                } else {
                    format!("{:?}", captures.iter().min_by_key(|c| c.case_index))
                };
                (verdict, !captures.is_empty(), canonical)
            });
            assert!(
                verdict.is_err(),
                "{}/{}: seeded bug went undetected",
                fx.checker,
                fx.object
            );
            assert!(captured, "{}/{}: no capture", fx.checker, fx.object);
            assert!(!first.is_empty());
        }
    }
}

#[test]
fn investigation_artifacts_are_tier_invariant() {
    for fx in all_fixtures() {
        let artifact = both_tiers(|| {
            let mut a = investigate(&fx, &RunConfig::replay())
                .unwrap_or_else(|e| panic!("{}/{}: {e}", fx.checker, fx.object));
            // The options fingerprint records the tier the investigation
            // ran under — the one field that is *supposed* to differ.
            // Everything else (context, evidence, shrink trajectory, file
            // name) must be bit-identical, so compare modulo that field.
            assert_eq!(a.options.bytecode, ccal_core::prefix::bytecode_effective());
            a.options.bytecode = false;
            (a.file_name(), a.encode().pretty())
        });
        assert!(artifact.0.starts_with(fx.checker));
    }
}
