//! Convergence-dedup differential over the forensics pipeline and a
//! passing certification stack: collapsing fingerprint-identical
//! diamond suffixes must be *observationally inert*. The seeded-bug
//! fixtures must produce the same verdicts and the same captured
//! failing cases (index, detail, reason, log — byte for byte) with the
//! convergence cache on and off, across workers × POR × prefix/deep
//! engine configs; a passing ticket-stack certification must keep its
//! per-obligation case accounting and verdict while *reducing* (never
//! changing the determinism of) the serial atom-step counters.

use std::sync::{Mutex, OnceLock};

use ccal_core::contexts::ContextGen;
use ccal_core::event::{Event, EventKind};
use ccal_core::forensics::CaptureScope;
use ccal_core::id::{Loc, Pid};
use ccal_core::prefix::{self, StateDedupOverride};
use ccal_core::val::Val;
use ccal_forensics::{all_fixtures, find, investigate, Fixture, RunConfig, ScriptedContext};
use ccal_objects::ticket;
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

/// The dedup override and the prefix step counters are process-global;
/// serialize every test that flips or brackets them.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// `(workers, dedup, por, prefix_share, deep_share)` base configs; the
/// convergence flag is the differential axis layered on each.
fn base_grid() -> Vec<(usize, bool, bool, bool, bool)> {
    vec![
        (1, false, false, false, false),
        (1, false, true, false, false),
        (1, false, false, true, true),
        (1, true, true, true, true),
        (2, true, false, true, false),
        (2, true, true, true, true),
    ]
}

fn config(base: (usize, bool, bool, bool, bool), state_dedup: bool) -> RunConfig {
    let (workers, dedup, por, prefix_share, deep_share) = base;
    RunConfig {
        workers,
        dedup,
        por,
        prefix_share,
        deep_share,
        state_dedup,
    }
}

/// Runs a fixture under `cfg` and canonicalizes the observation: the
/// verdict plus the captured failures. Parallel workers may race later
/// failing cases into the capture buffer after the first failure
/// short-circuits the queue, so only serial configs pin the full list;
/// the index-least case — the engine's determinism contract — is pinned
/// everywhere.
fn observe(fx: &Fixture, cfg: &RunConfig) -> (Result<(), String>, String) {
    let scope = CaptureScope::begin();
    let verdict = (fx.runner)(&(fx.contexts)(), cfg);
    let captures = scope.take();
    let canonical = if cfg.workers == 1 {
        format!("{captures:?}")
    } else {
        format!("{:?}", captures.iter().min_by_key(|c| c.case_index))
    };
    (verdict, canonical)
}

/// Failing polarity, all five checkers: verdict and first-failure
/// evidence are byte-identical with the convergence cache on and off,
/// across the engine grid. This is the grafting guard — a cached
/// failing suffix must replay onto the borrower's prefix log exactly.
#[test]
fn fixture_verdicts_and_captures_are_dedup_invariant() {
    let _guard = serial();
    for fx in all_fixtures() {
        for base in base_grid() {
            let off = observe(&fx, &config(base, false));
            let on = observe(&fx, &config(base, true));
            assert_eq!(
                off, on,
                "{}/{}: convergence dedup perturbed the observation under {base:?}",
                fx.checker, fx.object
            );
            assert!(
                off.0.is_err(),
                "{}/{}: seeded bug went undetected",
                fx.checker,
                fx.object
            );
        }
    }
}

/// Investigation artifacts (shrink trajectory, evidence, bytes, file
/// name) are identical whether the exploration that finds the witness
/// deduped convergent suffixes or not; replay itself always runs with
/// the cache off, and the artifact records that.
#[test]
fn investigation_artifacts_are_dedup_invariant() {
    let _guard = serial();
    for fx in all_fixtures() {
        let reference = investigate(&fx, &RunConfig::replay())
            .unwrap_or_else(|e| panic!("{}/{}: {e}", fx.checker, fx.object));
        assert!(
            !reference.options.state_dedup,
            "replay must record the cache off"
        );
        let deduped = investigate(
            &fx,
            &RunConfig {
                state_dedup: true,
                ..RunConfig::replay()
            },
        )
        .unwrap_or_else(|e| panic!("{}/{}: {e}", fx.checker, fx.object));
        assert_eq!(
            deduped.encode().pretty(),
            reference.encode().pretty(),
            "{}/{}: artifact drifted under convergence dedup",
            fx.checker,
            fx.object
        );
    }
}

/// A passing serial ticket-stack certification bracketed on the
/// process-global counters.
struct TicketRun {
    /// `(description, cases_checked, cases_skipped, cases_reduced)` per
    /// obligation, pipeline order.
    obligations: Vec<(String, usize, usize, usize)>,
    steps: u64,
    converged: u64,
}

fn certify_ticket() -> TicketRun {
    let b = Loc(0);
    let rounds = 2;
    let schedule_len = 3;
    let low = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(ticket::TicketEnvPlayer::new(Pid(1), b, rounds)))
        .with_schedule_len(schedule_len)
        .contexts();
    let atomic = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(ticket::FooEnvPlayer::new(Pid(1), b, rounds)))
        .with_schedule_len(schedule_len)
        .contexts();
    let steps0 = prefix::steps_total();
    let conv0 = prefix::converged_total();
    let stack = ticket::certify_ticket_stack_tuned(Pid(0), b, low, atomic, 1, false)
        .expect("the ticket stack certifies");
    let obligations = stack
        .fun_lift
        .certificate
        .obligations()
        .iter()
        .chain(stack.log_lift.certificate.obligations())
        .chain(stack.client_layer.certificate.obligations())
        .map(|ob| {
            (
                ob.description.clone(),
                ob.cases_checked,
                ob.cases_skipped,
                ob.cases_reduced,
            )
        })
        .collect();
    TicketRun {
        obligations,
        steps: prefix::steps_total().saturating_sub(steps0),
        converged: prefix::converged_total().saturating_sub(conv0),
    }
}

/// Passing polarity: the contended ticket stack certifies with the
/// identical per-obligation accounting and verdict under convergence
/// dedup, the serial step counters are run-to-run deterministic, and —
/// on the bytecode tier, where ClightX primitives expose a state
/// fingerprint — the cache actually hits and saves atom steps.
#[test]
fn passing_ticket_stack_is_dedup_invariant_and_cheaper() {
    let _guard = serial();
    let off = {
        let _sd = StateDedupOverride::force(false);
        certify_ticket()
    };
    let (on1, on2) = {
        let _sd = StateDedupOverride::force(true);
        (certify_ticket(), certify_ticket())
    };
    assert_eq!(
        on1.obligations, off.obligations,
        "convergence dedup perturbed the per-obligation accounting"
    );
    assert_eq!(
        on1.steps, on2.steps,
        "serial step counters must be run-to-run deterministic"
    );
    assert_eq!(
        on1.converged, on2.converged,
        "convergence hits must be run-to-run deterministic"
    );
    assert_eq!(off.converged, 0, "cache off records no hits");
    assert!(
        on1.steps <= off.steps,
        "dedup must never add steps ({} -> {})",
        off.steps,
        on1.steps
    );
    // The interpreter tier exposes no state fingerprint for in-flight C
    // primitives, so the cache is deliberately inert there.
    if prefix::bytecode_effective() {
        assert!(
            on1.converged > 0,
            "contended ticket stack produced no convergence hits"
        );
        assert!(
            on1.steps < off.steps,
            "convergence hits saved no steps ({} -> {})",
            off.steps,
            on1.steps
        );
    }
}

fn sim_fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| find("sim", "scratch-sensitive").expect("registered fixture"))
}

fn base_context() -> &'static ScriptedContext {
    static BASE: OnceLock<ScriptedContext> = OnceLock::new();
    BASE.get_or_init(|| {
        investigate(sim_fixture(), &RunConfig::replay())
            .expect("sim fixture investigates")
            .context
    })
}

/// Failure-preserving junk (see `shrink_props.rs`): env-pid schedule
/// slots or pushes to unrelated locations, both of which keep the
/// scratch-sensitive failure failing while growing the diamond mass the
/// convergence cache feeds on.
fn apply_junk(base: &ScriptedContext, ops: &[(u8, u8, u8)]) -> ScriptedContext {
    let mut sc = base.clone();
    for &(kind, sel, pos) in ops {
        let pid = Pid(1 + u32::from(sel) % 2);
        if kind % 2 == 0 {
            let at = usize::from(pos) % (sc.schedule.len() + 1);
            sc.schedule.insert(at, pid);
        } else {
            let ev = Event::new(
                pid,
                EventKind::Push(Loc(100 + u32::from(pos) % 8), Val::Int(i64::from(pos))),
            );
            let batches = sc.players.entry(pid).or_insert_with(|| vec![Vec::new()]);
            let at = usize::from(pos) % batches.len();
            batches[at].push(ev);
        }
    }
    sc
}

/// The first failure of a single-context grid, under an explicit
/// convergence setting (a dedup-sensitive `probe`).
fn first_failure(sc: &ScriptedContext, state_dedup: bool) -> Option<String> {
    let cfg = RunConfig {
        state_dedup,
        ..RunConfig::replay()
    };
    let scope = CaptureScope::begin();
    let _ = (sim_fixture().runner)(&[sc.to_env()], &cfg);
    scope
        .take()
        .into_iter()
        .min_by_key(|c| c.case_index)
        .map(|c| format!("{}|{}|{:?}|{:?}", c.case_index, c.reason, c.detail, c.log))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Proptest grid: randomly junk-augmented failing contexts produce
    /// byte-identical first-failure evidence (index, reason, detail,
    /// log) with the convergence cache on and off.
    #[test]
    fn junked_witness_evidence_is_dedup_invariant(
        ops in vec((0_u8..255, 0_u8..255, 0_u8..255), 1..10),
    ) {
        let junked = apply_junk(base_context(), &ops);
        let off = first_failure(&junked, false);
        let on = first_failure(&junked, true);
        prop_assert!(off.is_some(), "junked context stopped failing");
        prop_assert_eq!(off, on, "convergence dedup perturbed the evidence");
    }
}
