//! Regression gate over the checked-in golden corpus: every artifact in
//! `forensics/corpus/` must load, replay to a bit-identical verdict, and
//! re-encode to the exact bytes on disk (the JSON writer is
//! deterministic, so any drift in the format or the checkers shows up as
//! a byte diff here).

use std::path::PathBuf;

use ccal_forensics::{replay_artifact, TraceArtifact};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../forensics/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("forensics/corpus exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_covers_every_checker() {
    let files = corpus_files();
    assert!(
        files.len() >= 3,
        "expected at least 3 golden artifacts, found {}",
        files.len()
    );
    for checker in ["sim", "live", "linz", "race", "seqref"] {
        assert!(
            files.iter().any(|f| {
                f.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with(&format!("{checker}-")))
            }),
            "no golden artifact for checker `{checker}`"
        );
    }
}

#[test]
fn golden_artifacts_replay_bit_identically() {
    for f in corpus_files() {
        let a = TraceArtifact::load(&f).unwrap_or_else(|e| panic!("{e}"));
        replay_artifact(&a).unwrap_or_else(|e| panic!("{}: {e}", f.display()));
    }
}

/// Every golden artifact's options fingerprint must record that replay
/// runs with prefix-sharing off (alongside the serial/no-dedup/no-POR
/// knobs), and the field must be present in the on-disk bytes — not just
/// defaulted by the tolerant decoder.
#[test]
fn golden_artifacts_record_the_replay_fingerprint() {
    for f in corpus_files() {
        let on_disk = std::fs::read_to_string(&f).unwrap();
        assert!(
            on_disk.contains("\"prefix_share\""),
            "{}: options fingerprint does not record `prefix_share`",
            f.display()
        );
        assert!(
            on_disk.contains("\"bytecode\""),
            "{}: options fingerprint does not record the execution tier",
            f.display()
        );
        assert!(
            on_disk.contains("\"state_dedup\""),
            "{}: options fingerprint does not record convergence dedup",
            f.display()
        );
        let a = TraceArtifact::load(&f).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(a.options.workers, 1, "{}: replay must be serial", f.display());
        assert!(!a.options.dedup, "{}: replay must not dedup", f.display());
        assert!(!a.options.por, "{}: replay must not reduce", f.display());
        assert!(
            !a.options.prefix_share,
            "{}: replay must not prefix-share",
            f.display()
        );
        assert!(
            !a.options.state_dedup,
            "{}: replay must not converge-dedup",
            f.display()
        );
    }
}

#[test]
fn golden_artifacts_are_byte_stable() {
    for f in corpus_files() {
        let on_disk = std::fs::read_to_string(&f).unwrap();
        let a = TraceArtifact::load(&f).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(
            a.encode().pretty(),
            on_disk,
            "{}: re-encoding drifted from the checked-in bytes",
            f.display()
        );
    }
}
