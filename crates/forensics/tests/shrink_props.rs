//! Property tests for the shrink → artifact → replay pipeline.
//!
//! The `sim/scratch-sensitive` fixture's failure is *monotone* in the
//! environment's events: adding extra environment noise (env-pid schedule
//! slots, junk pushes to unrelated locations) to a failing context keeps
//! it failing. That lets these tests generate junk-augmented contexts
//! around the investigated 1-minimal witness without re-searching for a
//! failure, and assert the pipeline's contracts on each:
//!
//! * the junked context still fails its checker;
//! * shrinking it yields a context that still fails and is 1-minimal;
//! * probing the shrunk context is deterministic (bit-identical reason,
//!   case detail, and first-failure log across repeated runs and across a
//!   serialize/deserialize round trip);
//! * `investigate` produces byte-identical artifacts across
//!   `workers ∈ {1, 4}` × `por ∈ {on, off}`.

use std::sync::OnceLock;

use ccal_core::event::{Event, EventKind};
use ccal_core::id::{Loc, Pid};
use ccal_core::val::Val;
use ccal_forensics::{
    all_fixtures, find, investigate, one_minimal, probe, replay_artifact, shrink_context,
    Fixture, RunConfig, ScriptedContext,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn sim_fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| find("sim", "scratch-sensitive").expect("registered fixture"))
}

/// The investigated 1-minimal witness the junk is layered onto.
fn base_context() -> &'static ScriptedContext {
    static BASE: OnceLock<ScriptedContext> = OnceLock::new();
    BASE.get_or_init(|| {
        investigate(sim_fixture(), &RunConfig::replay())
            .expect("sim fixture investigates")
            .context
    })
}

/// Applies failure-preserving junk: every op either inserts an *env-pid*
/// schedule slot (never the focused `p0`, which would let the checked
/// primitive finish before the scratch pushes land) or appends a push to
/// an unrelated location into an existing batch.
fn apply_junk(base: &ScriptedContext, ops: &[(u8, u8, u8)]) -> ScriptedContext {
    let mut sc = base.clone();
    for &(kind, sel, pos) in ops {
        let pid = Pid(1 + u32::from(sel) % 2);
        if kind % 2 == 0 {
            let at = usize::from(pos) % (sc.schedule.len() + 1);
            sc.schedule.insert(at, pid);
        } else {
            let ev = Event::new(
                pid,
                EventKind::Push(Loc(100 + u32::from(pos) % 8), Val::Int(i64::from(pos))),
            );
            let batches = sc.players.entry(pid).or_insert_with(|| vec![Vec::new()]);
            let at = usize::from(pos) % batches.len();
            batches[at].push(ev);
        }
    }
    sc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn junk_augmented_witnesses_shrink_to_one_minimal_failures(
        ops in vec((0_u8..255, 0_u8..255, 0_u8..255), 1..10),
    ) {
        let fx = sim_fixture();
        let junked = apply_junk(base_context(), &ops);
        prop_assert!(junked.steps() > base_context().steps() || ops.is_empty());

        // Monotonicity: the junk-augmented context still fails.
        prop_assert!(probe(fx, &junked).is_some(), "junked context stopped failing: {junked:?}");

        // Shrinking it yields a failing, 1-minimal context.
        let out = shrink_context(&junked, &mut |sc| probe(fx, sc).is_some());
        prop_assert!(out.context.steps() <= junked.steps());
        let witness = probe(fx, &out.context);
        prop_assert!(witness.is_some(), "shrunk context stopped failing");
        prop_assert!(one_minimal(&out.context, &mut |sc| probe(fx, sc).is_some()));

        // Probing is deterministic and survives a serialization round trip.
        let witness = witness.unwrap();
        let again = probe(fx, &out.context).unwrap();
        prop_assert_eq!(&again.reason, &witness.reason);
        prop_assert_eq!(&again.detail, &witness.detail);
        prop_assert_eq!(&again.log, &witness.log);
        let decoded = ScriptedContext::decode(
            &ccal_forensics::json::parse(&out.context.encode().pretty()).unwrap(),
        )
        .unwrap();
        prop_assert_eq!(&decoded, &out.context);
        let replayed = probe(fx, &decoded).unwrap();
        prop_assert_eq!(&replayed.reason, &witness.reason);
        prop_assert_eq!(&replayed.log, &witness.log);
    }
}

/// `investigate` is a deterministic function of the fixture: the engine
/// knobs (worker count, POR, dedup, prefix sharing) never change which
/// case is reified,
/// how it shrinks, or the artifact bytes. POR may *skip* trace-equivalent
/// contexts, but the index-least failing case is never skippable — its
/// POR representative would be an earlier failure.
#[test]
fn investigation_is_identical_across_workers_and_por() {
    for fx in all_fixtures() {
        let reference = investigate(&fx, &RunConfig::replay())
            .unwrap_or_else(|e| panic!("investigate failed: {e}"));
        let reference_bytes = reference.encode().pretty();
        replay_artifact(&reference).expect("reference artifact replays");
        for workers in [1, 4] {
            for por in [false, true] {
                for prefix_share in [false, true] {
                    for deep_share in [false, true] {
                        let cfg = RunConfig {
                            workers,
                            dedup: workers > 1,
                            por,
                            prefix_share,
                            deep_share,
                            // Convergence dedup rides the deep axis so the
                            // grid covers it on and off without doubling.
                            state_dedup: deep_share,
                        };
                        let got = investigate(&fx, &cfg)
                            .unwrap_or_else(|e| panic!("investigate failed under {cfg:?}: {e}"));
                        assert_eq!(
                            got.encode().pretty(),
                            reference_bytes,
                            "{}/{}: artifact drifted under workers={workers} por={por} \
                             prefix_share={prefix_share} deep_share={deep_share}",
                            fx.checker,
                            fx.object
                        );
                    }
                }
            }
        }
    }
}
