//! The layered assembly language.
//!
//! A small x86-flavoured register machine (Fig. 7: `AsmFn ∈ List x86Instr`,
//! `AsmModule ∈ Loc ⇀ AsmFn`). It is the target of the CompCertX compiler
//! (`ccal-compcertx`) and the language in which hand-written layer code
//! (e.g. context switch, §5.1) is expressed. Primitive calls
//! ([`Instr::PrimCall`]) invoke the ambient layer interface — "primitive
//! calls ... directly specify the semantics of function `f` from underlying
//! layers" (§3.1).
//!
//! ## Calling convention
//!
//! Up to three arguments are passed in `EAX`, `EBX`, `ECX`; the return
//! value comes back in `EAX`. Each function activation gets a fresh frame
//! of `frame_slots` local slots (its CompCert-style stack block); the
//! operand stack is per-activation.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use ccal_core::id::Loc;
use ccal_core::layer::PrimSpec;
use ccal_core::module::{Lang, Module};

/// General-purpose registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reg {
    /// Accumulator; first argument and return value.
    EAX,
    /// Second argument.
    EBX,
    /// Third argument.
    ECX,
    /// Scratch.
    EDX,
    /// Scratch.
    ESI,
    /// Scratch.
    EDI,
}

impl Reg {
    /// All registers, in index order.
    pub const ALL: [Reg; 6] = [Reg::EAX, Reg::EBX, Reg::ECX, Reg::EDX, Reg::ESI, Reg::EDI];

    /// The register's index into a register file.
    pub fn index(self) -> usize {
        match self {
            Reg::EAX => 0,
            Reg::EBX => 1,
            Reg::ECX => 2,
            Reg::EDX => 3,
            Reg::ESI => 4,
            Reg::EDI => 5,
        }
    }

    /// The register carrying argument `i` of the calling convention.
    pub fn arg(i: usize) -> Option<Reg> {
        match i {
            0 => Some(Reg::EAX),
            1 => Some(Reg::EBX),
            2 => Some(Reg::ECX),
            _ => None,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Reg::EAX => "eax",
            Reg::EBX => "ebx",
            Reg::ECX => "ecx",
            Reg::EDX => "edx",
            Reg::ESI => "esi",
            Reg::EDI => "edi",
        };
        write!(f, "{s}")
    }
}

/// Comparison conditions for `Jcc`/`Setcc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl Cond {
    /// Evaluates the condition on the signed difference `lhs - rhs`.
    pub fn eval(self, diff: i64) -> bool {
        match self {
            Cond::Eq => diff == 0,
            Cond::Ne => diff != 0,
            Cond::Lt => diff < 0,
            Cond::Le => diff <= 0,
            Cond::Gt => diff > 0,
            Cond::Ge => diff >= 0,
        }
    }

    /// The negated condition.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "e",
            Cond::Ne => "ne",
            Cond::Lt => "l",
            Cond::Le => "le",
            Cond::Gt => "g",
            Cond::Ge => "ge",
        };
        write!(f, "{s}")
    }
}

/// Instruction operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// An immediate integer.
    Imm(i64),
    /// An immediate location (shared-object handle) — the assembly image
    /// of ClightX's `#N` literals.
    LocImm(Loc),
    /// A frame-local slot of the current activation.
    Slot(u32),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "${i}"),
            Operand::LocImm(l) => write!(f, "${l}"),
            Operand::Slot(s) => write!(f, "[fp+{s}]"),
        }
    }
}

/// Instructions. Jump targets are absolute instruction indices within the
/// function (the compiler resolves labels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst ← src`.
    Mov(Reg, Operand),
    /// `slot ← src`.
    StoreSlot(u32, Reg),
    /// `dst ← dst + src` (wrapping 64-bit).
    Add(Reg, Operand),
    /// `dst ← dst - src`.
    Sub(Reg, Operand),
    /// `dst ← dst * src`.
    Mul(Reg, Operand),
    /// `dst ← dst / src` (C truncating division; stuck on zero divisor).
    Div(Reg, Operand),
    /// `dst ← dst % src` (C remainder; stuck on zero divisor).
    Rem(Reg, Operand),
    /// Compare `lhs - rhs` and set the flags.
    Cmp(Reg, Operand),
    /// `dst ← (flags satisfy cond) ? 1 : 0`.
    Setcc(Cond, Reg),
    /// Unconditional jump.
    Jmp(usize),
    /// Conditional jump on the flags.
    Jcc(Cond, usize),
    /// Call another assembly function of the same module (arguments per the
    /// calling convention, result in `EAX`).
    Call(String),
    /// Call a primitive of the ambient layer interface with the given
    /// arity; arguments per the calling convention, result in `EAX`.
    PrimCall(String, u8),
    /// Push a register onto the operand stack.
    Push(Reg),
    /// Pop the operand stack into a register.
    Pop(Reg),
    /// Return from the current activation (result in `EAX`).
    Ret,
    /// Return from a `void` activation: the result is the unit value, not
    /// whatever `EAX` holds (so `void` C functions and their compilations
    /// agree observationally).
    RetVoid,
    /// No operation.
    Nop,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Mov(r, o) => write!(f, "mov {r}, {o}"),
            Instr::StoreSlot(s, r) => write!(f, "mov [fp+{s}], {r}"),
            Instr::Add(r, o) => write!(f, "add {r}, {o}"),
            Instr::Sub(r, o) => write!(f, "sub {r}, {o}"),
            Instr::Mul(r, o) => write!(f, "imul {r}, {o}"),
            Instr::Div(r, o) => write!(f, "idiv {r}, {o}"),
            Instr::Rem(r, o) => write!(f, "irem {r}, {o}"),
            Instr::Cmp(r, o) => write!(f, "cmp {r}, {o}"),
            Instr::Setcc(c, r) => write!(f, "set{c} {r}"),
            Instr::Jmp(t) => write!(f, "jmp .{t}"),
            Instr::Jcc(c, t) => write!(f, "j{c} .{t}"),
            Instr::Call(name) => write!(f, "call {name}"),
            Instr::PrimCall(name, n) => write!(f, "primcall {name}/{n}"),
            Instr::Push(r) => write!(f, "push {r}"),
            Instr::Pop(r) => write!(f, "pop {r}"),
            Instr::Ret => write!(f, "ret"),
            Instr::RetVoid => write!(f, "ret.void"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

/// An assembly function: arity, frame size in local slots, and code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmFunction {
    /// The function's name.
    pub name: String,
    /// Number of parameters (≤ 3, per the calling convention).
    pub arity: u8,
    /// Number of frame-local slots.
    pub frame_slots: u32,
    /// The instruction sequence.
    pub code: Vec<Instr>,
}

impl AsmFunction {
    /// Creates a function.
    ///
    /// # Panics
    ///
    /// Panics if `arity > 3`.
    pub fn new(name: &str, arity: u8, frame_slots: u32, code: Vec<Instr>) -> Self {
        assert!(arity <= 3, "calling convention passes at most 3 arguments");
        Self {
            name: name.to_owned(),
            arity,
            frame_slots,
            code,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

impl fmt::Display for AsmFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}/{} (frame {}):", self.name, self.arity, self.frame_slots)?;
        for (i, ins) in self.code.iter().enumerate() {
            writeln!(f, "  {i:3}: {ins}")?;
        }
        Ok(())
    }
}

/// A collection of assembly functions (Fig. 7's `AsmModule`).
#[derive(Debug, Clone, Default)]
pub struct AsmModule {
    funcs: BTreeMap<String, Arc<AsmFunction>>,
}

impl AsmModule {
    /// An empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a function (replacing any previous one of the same name).
    pub fn with_fn(mut self, func: AsmFunction) -> Self {
        self.funcs.insert(func.name.clone(), Arc::new(func));
        self
    }

    /// Looks up a function.
    pub fn get(&self, name: &str) -> Option<&Arc<AsmFunction>> {
        self.funcs.get(name)
    }

    /// Function names, sorted.
    pub fn fn_names(&self) -> Vec<&str> {
        self.funcs.keys().map(String::as_str).collect()
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Whether the module has no functions.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Wraps function `name` as a layer-primitive spec whose run executes
    /// the assembly on the ambient interface.
    ///
    /// # Panics
    ///
    /// Panics if the function does not exist.
    pub fn fn_spec(&self, name: &str) -> PrimSpec {
        let module = Arc::new(self.clone());
        let func = self
            .funcs
            .get(name)
            .unwrap_or_else(|| panic!("assembly module has no function `{name}`"))
            .clone();
        PrimSpec::strategy(name, true, move |_pid, args| {
            Box::new(crate::exec::AsmRun::new(module.clone(), func.clone(), args))
        })
    }

    /// Converts the whole module into a core [`Module`] whose functions
    /// run over their underlay.
    pub fn as_core_module(&self, name: &str) -> Module {
        let mut m = Module::new(name);
        for fname in self.fn_names() {
            m = m.with_fn(Lang::Asm, self.fn_spec(fname));
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_and_negate() {
        assert!(Cond::Lt.eval(-1));
        assert!(!Cond::Lt.eval(0));
        assert!(Cond::Ge.eval(0));
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            for d in [-2, 0, 3] {
                assert_eq!(c.eval(d), !c.negate().eval(d));
            }
        }
    }

    #[test]
    fn reg_arg_mapping() {
        assert_eq!(Reg::arg(0), Some(Reg::EAX));
        assert_eq!(Reg::arg(2), Some(Reg::ECX));
        assert_eq!(Reg::arg(3), None);
    }

    #[test]
    #[should_panic(expected = "at most 3")]
    fn arity_is_bounded() {
        let _ = AsmFunction::new("f", 4, 0, vec![]);
    }

    #[test]
    fn module_lookup_and_names() {
        let m = AsmModule::new()
            .with_fn(AsmFunction::new("f", 0, 0, vec![Instr::Ret]))
            .with_fn(AsmFunction::new("g", 1, 2, vec![Instr::Ret]));
        assert_eq!(m.fn_names(), vec!["f", "g"]);
        assert_eq!(m.get("f").unwrap().arity, 0);
        assert!(m.get("h").is_none());
    }

    #[test]
    fn display_renders_listing() {
        let f = AsmFunction::new(
            "f",
            1,
            1,
            vec![Instr::Mov(Reg::EBX, Operand::Imm(2)), Instr::Ret],
        );
        let s = f.to_string();
        assert!(s.contains("mov ebx, $2"));
        assert!(s.contains("ret"));
    }
}
