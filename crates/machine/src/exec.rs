//! The assembly interpreter, as a resumable layer computation.
//!
//! [`AsmRun`] executes an [`AsmFunction`] over an ambient layer interface:
//! ordinary instructions are the "silent" program transitions of §3.1
//! (they change only registers and frame-private state), while
//! [`Instr::PrimCall`] invokes a layer primitive, whose query points bubble
//! up through [`PrimRun::resume`] so any number of participants'
//! executions can interleave there — and only there, matching §3.2's
//! interleaving granularity.

use std::sync::Arc;

use ccal_core::layer::{PrimCtx, PrimRun, PrimStep, SubCall};
use ccal_core::machine::MachineError;
use ccal_core::val::Val;

use crate::asm::{AsmFunction, AsmModule, Instr, Operand, Reg};

/// Instruction budget per activation tree, guarding against loops that
/// contain no query points.
const INSTR_BUDGET: u64 = 1_000_000;

#[derive(Debug, Clone)]
struct Frame {
    func: Arc<AsmFunction>,
    pc: usize,
    regs: [Val; 6],
    slots: Vec<Val>,
    stack: Vec<Val>,
    /// Last comparison result (`lhs - rhs`) for `Jcc`/`Setcc`.
    flags: i64,
}

impl Frame {
    fn new(func: Arc<AsmFunction>, args: &[Val]) -> Result<Self, MachineError> {
        if args.len() != func.arity as usize {
            return Err(MachineError::Stuck(format!(
                "{} expects {} arguments, got {}",
                func.name,
                func.arity,
                args.len()
            )));
        }
        let mut regs: [Val; 6] = Default::default();
        for (i, v) in args.iter().enumerate() {
            regs[Reg::arg(i).expect("arity ≤ 3").index()] = v.clone();
        }
        let slots = vec![Val::Undef; func.frame_slots as usize];
        Ok(Self {
            func,
            pc: 0,
            regs,
            slots,
            stack: Vec::new(),
            flags: 0,
        })
    }

    fn reg(&self, r: Reg) -> Val {
        self.regs[r.index()].clone()
    }

    fn set_reg(&mut self, r: Reg, v: Val) {
        self.regs[r.index()] = v;
    }

    fn operand(&self, o: &Operand) -> Result<Val, MachineError> {
        match o {
            Operand::Reg(r) => Ok(self.reg(*r)),
            Operand::Imm(i) => Ok(Val::Int(*i)),
            Operand::LocImm(l) => Ok(Val::Loc(*l)),
            Operand::Slot(s) => self.slots.get(*s as usize).cloned().ok_or_else(|| {
                MachineError::Stuck(format!("{}: bad frame slot {s}", self.func.name))
            }),
        }
    }
}

/// A resumable run of one assembly function (plus its nested activations).
pub struct AsmRun {
    module: Arc<AsmModule>,
    frames: Vec<Frame>,
    pending: Option<SubCall>,
    budget: u64,
    init_error: Option<MachineError>,
    result: Option<Val>,
}

impl AsmRun {
    /// Starts a run of `func` (from `module`) with the given arguments.
    pub fn new(module: Arc<AsmModule>, func: Arc<AsmFunction>, args: Vec<Val>) -> Self {
        let (frames, init_error) = match Frame::new(func, &args) {
            Ok(f) => (vec![f], None),
            Err(e) => (Vec::new(), Some(e)),
        };
        Self {
            module,
            frames,
            pending: None,
            budget: INSTR_BUDGET,
            init_error,
            result: None,
        }
    }

    fn top(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("non-empty frame stack")
    }

    fn arith<F: FnOnce(i64, i64) -> i64>(
        &mut self,
        dst: Reg,
        src: &Operand,
        f: F,
    ) -> Result<(), MachineError> {
        let rhs = self.top().operand(src)?.as_int()?;
        let lhs = self.top().reg(dst).as_int()?;
        self.top().set_reg(dst, Val::Int(f(lhs, rhs)));
        Ok(())
    }
}

impl PrimRun for AsmRun {
    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        if let Some(e) = self.init_error.take() {
            return Err(e);
        }
        if let Some(v) = &self.result {
            return Ok(PrimStep::Done(v.clone()));
        }
        loop {
            // Drive a pending primitive call first.
            if let Some(sub) = self.pending.as_mut() {
                match sub.step(ctx)? {
                    None => return Ok(PrimStep::Query),
                    Some(v) => {
                        self.pending = None;
                        self.top().set_reg(Reg::EAX, v);
                    }
                }
            }
            if self.budget == 0 {
                return Err(MachineError::OutOfFuel {
                    budget: INSTR_BUDGET,
                });
            }
            self.budget -= 1;
            let frame = self.frames.last_mut().expect("active frame");
            let instr = match frame.func.code.get(frame.pc) {
                Some(i) => i.clone(),
                None => {
                    return Err(MachineError::Stuck(format!(
                        "{}: fell off the end of the code (pc {})",
                        frame.func.name, frame.pc
                    )));
                }
            };
            frame.pc += 1;
            match instr {
                Instr::Nop => {}
                Instr::Mov(dst, src) => {
                    let v = self.top().operand(&src)?;
                    self.top().set_reg(dst, v);
                }
                Instr::StoreSlot(slot, src) => {
                    let v = self.top().reg(src);
                    let name = self.top().func.name.clone();
                    match self.top().slots.get_mut(slot as usize) {
                        Some(s) => *s = v,
                        None => {
                            return Err(MachineError::Stuck(format!(
                                "{name}: bad frame slot {slot}"
                            )));
                        }
                    }
                }
                Instr::Add(dst, src) => self.arith(dst, &src, i64::wrapping_add)?,
                Instr::Sub(dst, src) => self.arith(dst, &src, i64::wrapping_sub)?,
                Instr::Mul(dst, src) => self.arith(dst, &src, i64::wrapping_mul)?,
                Instr::Div(dst, src) => {
                    let rhs = self.top().operand(&src)?.as_int()?;
                    if rhs == 0 {
                        return Err(MachineError::Stuck("division by zero".to_owned()));
                    }
                    let lhs = self.top().reg(dst).as_int()?;
                    self.top().set_reg(dst, Val::Int(lhs.wrapping_div(rhs)));
                }
                Instr::Rem(dst, src) => {
                    let rhs = self.top().operand(&src)?.as_int()?;
                    if rhs == 0 {
                        return Err(MachineError::Stuck("remainder by zero".to_owned()));
                    }
                    let lhs = self.top().reg(dst).as_int()?;
                    self.top().set_reg(dst, Val::Int(lhs.wrapping_rem(rhs)));
                }
                Instr::Cmp(lhs, rhs) => {
                    let r = self.top().operand(&rhs)?.as_int()?;
                    let l = self.top().reg(lhs).as_int()?;
                    self.top().flags = l.wrapping_sub(r);
                }
                Instr::Setcc(cond, dst) => {
                    let flags = self.top().flags;
                    self.top()
                        .set_reg(dst, Val::Int(i64::from(cond.eval(flags))));
                }
                Instr::Jmp(target) => {
                    self.top().pc = target;
                }
                Instr::Jcc(cond, target) => {
                    if cond.eval(self.top().flags) {
                        self.top().pc = target;
                    }
                }
                Instr::Push(r) => {
                    let v = self.top().reg(r);
                    self.top().stack.push(v);
                }
                Instr::Pop(r) => {
                    let v = self.top().stack.pop().ok_or_else(|| {
                        MachineError::Stuck("pop from empty operand stack".to_owned())
                    })?;
                    self.top().set_reg(r, v);
                }
                Instr::Call(name) => {
                    let callee = self.module.get(&name).cloned().ok_or_else(|| {
                        MachineError::Stuck(format!("call to unknown function `{name}`"))
                    })?;
                    let args: Vec<Val> = (0..callee.arity as usize)
                        .map(|i| self.top().reg(Reg::arg(i).expect("arity ≤ 3")))
                        .collect();
                    self.frames.push(Frame::new(callee, &args)?);
                }
                Instr::PrimCall(name, arity) => {
                    let args: Vec<Val> = (0..arity as usize)
                        .map(|i| self.top().reg(Reg::arg(i).expect("arity ≤ 3")))
                        .collect();
                    self.pending = Some(SubCall::start(ctx, &name, args)?);
                    // Loop back: the pending call is driven at the top.
                }
                Instr::RetVoid => {
                    self.frames.pop();
                    match self.frames.last_mut() {
                        Some(caller) => caller.set_reg(Reg::EAX, Val::Unit),
                        None => {
                            self.result = Some(Val::Unit);
                            return Ok(PrimStep::Done(Val::Unit));
                        }
                    }
                }
                Instr::Ret => {
                    let ret = self.top().reg(Reg::EAX);
                    self.frames.pop();
                    match self.frames.last_mut() {
                        Some(caller) => caller.set_reg(Reg::EAX, ret),
                        None => {
                            self.result = Some(ret.clone());
                            return Ok(PrimStep::Done(ret));
                        }
                    }
                }
            }
        }
    }

    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        let pending = match &self.pending {
            Some(sub) => Some(sub.fork()?),
            None => None,
        };
        Some(Box::new(AsmRun {
            module: self.module.clone(),
            frames: self.frames.clone(),
            pending,
            budget: self.budget,
            init_error: self.init_error.clone(),
            result: self.result.clone(),
        }))
    }
}

impl std::fmt::Debug for AsmRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsmRun")
            .field("frames", &self.frames.len())
            .field("pending", &self.pending.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Cond;
    use ccal_core::env::EnvContext;
    use ccal_core::event::EventKind;
    use ccal_core::id::Pid;
    use ccal_core::layer::{LayerInterface, PrimSpec};
    use ccal_core::machine::LayerMachine;
    use ccal_core::strategy::RoundRobinScheduler;

    fn run_fn(iface: LayerInterface, module: &AsmModule, name: &str, args: &[Val]) -> Val {
        let extended = module.as_core_module("asm").install(&iface).unwrap();
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2)));
        let mut m = LayerMachine::new(extended, Pid(0), env);
        m.call_prim(name, args).unwrap()
    }

    fn empty_iface() -> LayerInterface {
        LayerInterface::builder("L").build()
    }

    #[test]
    fn arithmetic_and_return() {
        // f(x) = x * 2 + 1
        let f = AsmFunction::new(
            "f",
            1,
            0,
            vec![
                Instr::Mul(Reg::EAX, Operand::Imm(2)),
                Instr::Add(Reg::EAX, Operand::Imm(1)),
                Instr::Ret,
            ],
        );
        let m = AsmModule::new().with_fn(f);
        assert_eq!(
            run_fn(empty_iface(), &m, "f", &[Val::Int(20)]),
            Val::Int(41)
        );
    }

    #[test]
    fn loops_with_jcc() {
        // sum(n) = 0 + 1 + ... + n, via a loop.
        let f = AsmFunction::new(
            "sum",
            1,
            0,
            vec![
                // ebx := acc = 0; loop: if eax <= 0 -> done
                Instr::Mov(Reg::EBX, Operand::Imm(0)),
                Instr::Cmp(Reg::EAX, Operand::Imm(0)), // 1
                Instr::Jcc(Cond::Le, 6),
                Instr::Add(Reg::EBX, Operand::Reg(Reg::EAX)),
                Instr::Sub(Reg::EAX, Operand::Imm(1)),
                Instr::Jmp(1),
                Instr::Mov(Reg::EAX, Operand::Reg(Reg::EBX)), // 6
                Instr::Ret,
            ],
        );
        let m = AsmModule::new().with_fn(f);
        assert_eq!(run_fn(empty_iface(), &m, "sum", &[Val::Int(10)]), Val::Int(55));
    }

    #[test]
    fn frame_slots_are_private_per_activation() {
        // g(x) = slot0 = x; f(x) = g(x+1); returns slot0 of f unchanged.
        let f = AsmFunction::new(
            "f",
            1,
            1,
            vec![
                Instr::StoreSlot(0, Reg::EAX),
                Instr::Add(Reg::EAX, Operand::Imm(1)),
                Instr::Call("g".to_owned()),
                Instr::Mov(Reg::EAX, Operand::Slot(0)),
                Instr::Ret,
            ],
        );
        let g = AsmFunction::new(
            "g",
            1,
            1,
            vec![
                Instr::Mov(Reg::EDX, Operand::Imm(999)),
                Instr::StoreSlot(0, Reg::EDX),
                Instr::Ret,
            ],
        );
        let m = AsmModule::new().with_fn(f).with_fn(g);
        assert_eq!(run_fn(empty_iface(), &m, "f", &[Val::Int(5)]), Val::Int(5));
    }

    #[test]
    fn primcall_invokes_layer_primitive() {
        let iface = LayerInterface::builder("L")
            .prim(PrimSpec::atomic("double", |ctx, args| {
                ctx.emit(EventKind::Prim("double".into(), args.to_vec()));
                Ok(Val::Int(args[0].as_int()? * 2))
            }))
            .build();
        let f = AsmFunction::new(
            "f",
            1,
            0,
            vec![Instr::PrimCall("double".to_owned(), 1), Instr::Ret],
        );
        let m = AsmModule::new().with_fn(f);
        assert_eq!(run_fn(iface, &m, "f", &[Val::Int(21)]), Val::Int(42));
    }

    #[test]
    fn push_pop_round_trip() {
        let f = AsmFunction::new(
            "f",
            1,
            0,
            vec![
                Instr::Push(Reg::EAX),
                Instr::Mov(Reg::EAX, Operand::Imm(0)),
                Instr::Pop(Reg::EBX),
                Instr::Mov(Reg::EAX, Operand::Reg(Reg::EBX)),
                Instr::Ret,
            ],
        );
        let m = AsmModule::new().with_fn(f);
        assert_eq!(run_fn(empty_iface(), &m, "f", &[Val::Int(8)]), Val::Int(8));
    }

    #[test]
    fn wrong_arity_is_stuck() {
        let f = AsmFunction::new("f", 2, 0, vec![Instr::Ret]);
        let m = AsmModule::new().with_fn(f);
        let extended = m.as_core_module("asm").install(&empty_iface()).unwrap();
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(1)));
        let mut machine = LayerMachine::new(extended, Pid(0), env);
        assert!(matches!(
            machine.call_prim("f", &[Val::Int(1)]),
            Err(MachineError::Stuck(_))
        ));
    }

    #[test]
    fn falling_off_the_code_is_stuck() {
        let f = AsmFunction::new("f", 0, 0, vec![Instr::Nop]);
        let m = AsmModule::new().with_fn(f);
        let extended = m.as_core_module("asm").install(&empty_iface()).unwrap();
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(1)));
        let mut machine = LayerMachine::new(extended, Pid(0), env);
        assert!(matches!(
            machine.call_prim("f", &[]),
            Err(MachineError::Stuck(_))
        ));
    }
}
