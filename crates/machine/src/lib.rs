//! # ccal-machine — the multicore machine substrate
//!
//! The machine-level systems of the CCAL reproduction (paper §3):
//!
//! * [`mem`] — CompCert-style block memory (used by the assembly
//!   interpreter and by `ccal-compcertx`'s algebraic memory model);
//! * [`asm`] — the layered assembly language (Fig. 7's `AsmModule`), the
//!   target of CompCertX;
//! * [`exec`] — the assembly interpreter as a resumable layer computation,
//!   so compiled code runs over any layer interface and interleaves at
//!   query points;
//! * [`lx86`] — the CPU-local layer interface `Lx86[c]` with the push/pull
//!   shared-memory primitives (Fig. 8) and the ticket-lock hardware
//!   primitives, all computed by replay functions;
//! * [`mx86`] — the multiprocessor hardware machine `Mx86` (§3.1) with
//!   concrete in-place shared state and explicit hardware scheduling;
//! * [`linking`] — the executable Theorem 3.1: `Mx86` and `Lx86[D]` agree
//!   on every bounded interleaving.

#![warn(missing_docs)]

pub mod asm;
pub mod exec;
pub mod linking;
pub mod lx86;
pub mod mem;
pub mod mx86;

pub use asm::{AsmFunction, AsmModule, Cond, Instr, Operand, Reg};
pub use exec::AsmRun;
pub use linking::{check_multicore_linking, check_multicore_linking_between, schedules};
pub use lx86::{in_critical_l0, lx86_interface, owned_locs};
pub use mem::{Addr, Block, MemError, Memory};
pub use mx86::{mx86_hw_interface, Mx86Machine, Mx86Program};
