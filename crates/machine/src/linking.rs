//! Multicore linking — the executable Theorem 3.1.
//!
//! "By composing all the CPUs in the machine ..., the resulting layer
//! interface does not depend on any environmental events except those from
//! the hardware scheduler. We construct such a layer interface `Lx86[D]`
//! using the primitives provided by the hardware `Mx86`. We can then prove
//! a contextual refinement from `Mx86` to `Lx86[D]` by picking a suitable
//! hardware scheduler of `Lx86[D]` for every interleaving (or log) of
//! `Mx86`" (Thm 3.1).
//!
//! [`check_multicore_linking`] checks this on a bounded family of
//! interleavings: for every enumerated hardware schedule, the program runs
//! on the concrete-state `Mx86` machine; a *suitable layer scheduler* is
//! derived from the produced log and the program re-runs on the
//! replay-based layer machine `Lx86[D]` under it; per-CPU event
//! projections and all return values must agree. This validates that the
//! replay-function semantics (everything-from-the-log) is a faithful
//! abstraction of in-place hardware state.

use ccal_core::calculus::{LayerError, Obligation, Rule};
use ccal_core::id::Pid;
use ccal_core::layer::LayerInterface;

use crate::lx86::lx86_interface;
use crate::mx86::{Mx86Machine, Mx86Program};

/// Enumerates all schedules of length `len` over `domain`, capped at
/// `max` using a deterministic stride (same sampling discipline as
/// `ccal_core::contexts::ContextGen`).
pub fn schedules(domain: &[Pid], len: usize, max: usize) -> Vec<Vec<Pid>> {
    let n = domain.len();
    let total = n.pow(len as u32);
    let take = total.min(max.max(1));
    let stride = total.div_ceil(take).max(1);
    (0..total)
        .step_by(stride)
        .take(take)
        .map(|mut index| {
            let mut script = Vec::with_capacity(len);
            for _ in 0..len {
                script.push(domain[index % n]);
                index /= n;
            }
            script
        })
        .collect()
}

/// Bounded check of Theorem 3.1 for a fixed program: for every enumerated
/// hardware schedule, `[[P]]_{Mx86} = [[P]]_{Lx86[D]}` (log, return values
/// and turn-for-turn agreement). Schedules on which *both* machines starve
/// (out of fuel) are skipped; a schedule on which exactly one machine
/// fails is a counterexample.
///
/// # Errors
///
/// [`LayerError::Mismatch`] describing the first disagreeing schedule, or
/// [`LayerError::Machine`] if a run fails on one side only.
pub fn check_multicore_linking(
    ncpus: u32,
    program: &Mx86Program,
    schedule_len: usize,
    max_schedules: usize,
) -> Result<Obligation, LayerError> {
    check_multicore_linking_between(
        ncpus,
        crate::mx86::mx86_hw_interface(),
        lx86_interface(),
        program,
        schedule_len,
        max_schedules,
    )
}

/// Generalization of [`check_multicore_linking`] to arbitrary
/// hardware/layer interface pairs — used by the objects crate to link
/// extended machines (e.g. with MCS primitives added on both sides).
///
/// For each enumerated hardware schedule the program runs on the hardware
/// machine; from the produced log a *suitable layer scheduler* is derived
/// (the replay scheduler — Thm 3.1's "picking a suitable hardware
/// scheduler ... for every interleaving"), the program is re-run on the
/// layer machine under it, and the runs are compared observationally:
/// per-CPU event projections and all return values must agree. (Whole-log
/// equality is deliberately not required: the layer machine's critical
/// state collapses ownership windows that raw hardware may interleave —
/// the "interleavings shuffling" of the log-lift pattern, §3.3.)
///
/// Hardware schedules on which the program races (the hardware machine
/// gets stuck) or starves are counted as skipped: Thm 3.1 transports the
/// behaviors of *safe* runs, and showing programs never get stuck is the
/// race-freedom obligation checked elsewhere.
///
/// # Errors
///
/// [`LayerError::Mismatch`] describing the first disagreeing schedule, or
/// [`LayerError::Machine`] if the layer run fails where hardware
/// succeeded.
pub fn check_multicore_linking_between(
    ncpus: u32,
    hw_iface: LayerInterface,
    layer_iface: LayerInterface,
    program: &Mx86Program,
    schedule_len: usize,
    max_schedules: usize,
) -> Result<Obligation, LayerError> {
    use ccal_core::conc::ConcurrentMachine;
    use ccal_core::id::PidSet;
    use ccal_core::machine::MachineError;
    use ccal_core::sim::replay_env_set;

    let hw = Mx86Machine::with_interface(ncpus, hw_iface);
    let domain = hw.domain();
    let focused = PidSet::from_pids(domain.clone());
    let mut cases_checked = 0;
    let mut cases_skipped = 0;
    for (si, schedule) in schedules(&domain, schedule_len, max_schedules)
        .into_iter()
        .enumerate()
    {
        let hw_out = match hw.run_with_schedule(program, &schedule) {
            Ok(out) => out,
            Err(MachineError::Stuck(_))
            | Err(MachineError::Replay(_))
            | Err(MachineError::OutOfFuel { .. }) => {
                cases_skipped += 1;
                continue;
            }
            Err(e) => return Err(LayerError::Machine(e)),
        };
        // Derive the layer scheduler from the hardware interleaving.
        let layer_env = replay_env_set(&hw_out.log, &focused);
        let layer_machine =
            ConcurrentMachine::new(layer_iface.clone(), focused.clone(), layer_env);
        let ly_out = match layer_machine.run(program) {
            Ok(out) => out,
            Err(e) => {
                return Err(LayerError::Mismatch {
                    expected: "layer run to succeed like the hardware run".to_owned(),
                    found: format!("layer error: {e}"),
                    context: format!("multicore linking, schedule #{si} ({schedule:?})"),
                });
            }
        };
        for pid in &domain {
            let hw_proj: Vec<_> = hw_out.log.events_by(*pid).cloned().collect();
            let ly_proj: Vec<_> = ly_out.log.events_by(*pid).cloned().collect();
            if hw_proj != ly_proj {
                return Err(LayerError::Mismatch {
                    expected: format!("{ly_proj:?}"),
                    found: format!("{hw_proj:?}"),
                    context: format!(
                        "multicore linking projection for {pid}, schedule #{si} ({schedule:?})"
                    ),
                });
            }
        }
        if hw_out.rets != ly_out.rets {
            return Err(LayerError::Mismatch {
                expected: format!("{:?}", ly_out.rets),
                found: format!("{:?}", hw_out.rets),
                context: format!(
                    "multicore linking return values, schedule #{si} ({schedule:?})"
                ),
            });
        }
        cases_checked += 1;
    }
    Ok(Obligation {
        rule: Rule::MulticoreLink,
        description: format!("∀sched: [[P]]_Mx86({ncpus} cpus) ⊑ [[P]]_Lx86[D]"),
        cases_checked,
        cases_skipped,
        cases_reduced: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_core::id::Loc;
    use ccal_core::val::Val;

    fn fai_program(ncpus: u32, per_cpu: usize) -> Mx86Program {
        let mut prog = Mx86Program::new();
        for c in 0..ncpus {
            prog.insert(
                Pid(c),
                (0..per_cpu)
                    .map(|_| ("fai_t".to_owned(), vec![Val::Loc(Loc(0))]))
                    .collect(),
            );
        }
        prog
    }

    #[test]
    fn schedules_enumeration_has_expected_size() {
        let d = [Pid(0), Pid(1)];
        assert_eq!(schedules(&d, 3, 100).len(), 8);
        assert!(schedules(&d, 10, 16).len() <= 16);
    }

    #[test]
    fn fai_program_links_across_all_schedules() {
        let ob = check_multicore_linking(2, &fai_program(2, 2), 4, 64).unwrap();
        assert_eq!(ob.rule, Rule::MulticoreLink);
        assert_eq!(ob.cases_checked, 16);
    }

    #[test]
    fn pull_push_program_links() {
        let b = Val::Loc(Loc(0));
        let mut prog = Mx86Program::new();
        prog.insert(
            Pid(0),
            vec![
                ("pull".to_owned(), vec![b.clone()]),
                ("mset".to_owned(), vec![b.clone(), Val::Int(5)]),
                ("push".to_owned(), vec![b.clone()]),
            ],
        );
        prog.insert(Pid(1), vec![("fai_t".to_owned(), vec![Val::Loc(Loc(1))])]);
        let ob = check_multicore_linking(2, &prog, 3, 64).unwrap();
        assert!(ob.cases_checked > 0);
    }

    #[test]
    fn racy_program_races_identically_on_both_machines() {
        // Both CPUs pull the same location: on racy schedules both
        // machines must get stuck (skipped), on race-free schedules both
        // must succeed — never a one-sided failure.
        let b = Val::Loc(Loc(0));
        let mut prog = Mx86Program::new();
        for c in 0..2 {
            prog.insert(
                Pid(c),
                vec![
                    ("pull".to_owned(), vec![b.clone()]),
                    ("push".to_owned(), vec![b.clone()]),
                ],
            );
        }
        let ob = check_multicore_linking(2, &prog, 4, 64).unwrap();
        assert!(ob.cases_checked > 0, "some race-free schedules exist");
        assert!(ob.cases_skipped > 0, "some racy schedules exist");
    }
}
