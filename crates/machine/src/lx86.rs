//! The CPU-local layer interface `Lx86[c]` (§3.2).
//!
//! `Lx86` equips the assembly machine with the shared primitives of the
//! push/pull memory model (Fig. 8) and the hardware atomic primitives of
//! the ticket lock's bottom interface `L0` ("these primitives are provided
//! by `L0` and implemented using x86 atomic instructions", §2). Every
//! primitive's return value is computed by a *replay function* over the
//! global log — the machine state is a function of the log, which is what
//! makes the interface compose in parallel.
//!
//! The corresponding *hardware* machine `Mx86`, which maintains shared
//! state concretely and in place, lives in [`crate::mx86`]; Theorem 3.1's
//! executable counterpart ([`crate::linking`]) validates that the two
//! agree on every bounded interleaving.

use std::collections::BTreeSet;

use ccal_core::abs::AbsState;
use ccal_core::event::EventKind;
use ccal_core::id::{Loc, Pid};
use ccal_core::layer::{LayerInterface, PrimSpec};
use ccal_core::log::Log;
use ccal_core::machine::MachineError;
use ccal_core::replay::{my_ticket, replay_shared, replay_ticket, Ownership};
use ccal_core::val::Val;

/// The abstract-state key of CPU `pid`'s local copy of shared location `b`
/// ("`m` is just a local copy of the shared memory", §3.2).
pub fn local_copy_key(pid: Pid, b: Loc) -> String {
    format!("m[{pid}][{b}]")
}

/// The set of shared locations currently pulled (owned) by `pid`,
/// reconstructed from the log.
pub fn owned_locs(log: &Log, pid: Pid) -> BTreeSet<Loc> {
    let mut owned = BTreeSet::new();
    for e in log.iter() {
        match e.kind {
            EventKind::Pull(b) if e.pid == pid => {
                owned.insert(b);
            }
            EventKind::Push(b, _) if e.pid == pid => {
                owned.remove(&b);
            }
            _ => {}
        }
    }
    owned
}

/// The set of ticket locks currently held by `pid`: a `hold(b)` not yet
/// followed by the holder's `inc_n(b)`.
pub fn held_ticket_locks(log: &Log, pid: Pid) -> BTreeSet<Loc> {
    let mut held = BTreeSet::new();
    for e in log.iter() {
        match e.kind {
            EventKind::Hold(b) if e.pid == pid => {
                held.insert(b);
            }
            EventKind::IncN(b) if e.pid == pid => {
                held.remove(&b);
            }
            _ => {}
        }
    }
    held
}

/// The critical-state predicate of the `Lx86`-family interfaces: a CPU is
/// critical while it owns a pulled location or holds a ticket lock —
/// "there is no need to ask E in critical state" (§2).
pub fn in_critical_l0(pid: Pid, log: &Log) -> bool {
    !owned_locs(log, pid).is_empty() || !held_ticket_locks(log, pid).is_empty()
}

fn arg_loc(args: &[Val], i: usize, prim: &str) -> Result<Loc, MachineError> {
    args.get(i)
        .ok_or_else(|| MachineError::Stuck(format!("{prim}: missing argument {i}")))?
        .as_loc()
        .map_err(MachineError::from)
}

/// `σ_pull` (Fig. 8): acquires ownership of `b`, loading the replayed
/// shared value into the CPU's local copy. Returns the loaded value.
/// Stuck if `b` is not free — the data-race signal of §3.1.
pub fn pull_prim() -> PrimSpec {
    PrimSpec::atomic("pull", |ctx, args| {
        let b = arg_loc(args, 0, "pull")?;
        ctx.emit(EventKind::Pull(b));
        let cell = replay_shared(ctx.log, b)?;
        ctx.abs.set(&local_copy_key(ctx.pid, b), cell.value.clone());
        Ok(cell.value)
    })
}

/// `σ_push` (Fig. 8): publishes the CPU's local copy of `b` and frees its
/// ownership. Fig. 8's "do not query E" is realized by the critical
/// state: a CPU that owns `b` is critical, so the machine skips the query
/// point — while a protocol-violating push (not owning `b`) is preemptible
/// exactly as on the raw hardware. Stuck if the CPU does not own `b`.
pub fn push_prim() -> PrimSpec {
    PrimSpec::atomic("push", |ctx, args| {
        let b = arg_loc(args, 0, "push")?;
        let v = ctx.abs.get_or_undef(&local_copy_key(ctx.pid, b));
        ctx.emit(EventKind::Push(b, v));
        replay_shared(ctx.log, b)?;
        Ok(Val::Unit)
    })
}

/// Private read of the local copy of `b`. Stuck unless the CPU owns `b`
/// ("tries to access ... a location not owned by the current CPU, ... the
/// machine gets stuck", §3.1).
pub fn mget_prim() -> PrimSpec {
    PrimSpec::private("mget", |ctx, args| {
        let b = arg_loc(args, 0, "mget")?;
        let cell = replay_shared(ctx.log, b)?;
        if cell.owner != Ownership::Owned(ctx.pid) {
            return Err(MachineError::Stuck(format!(
                "mget({b}) by {} without ownership",
                ctx.pid
            )));
        }
        Ok(ctx.abs.get_or_undef(&local_copy_key(ctx.pid, b)))
    })
}

/// Private write of the local copy of `b`. Stuck unless the CPU owns `b`.
pub fn mset_prim() -> PrimSpec {
    PrimSpec::private("mset", |ctx, args| {
        let b = arg_loc(args, 0, "mset")?;
        let v = args
            .get(1)
            .cloned()
            .ok_or_else(|| MachineError::Stuck("mset: missing value".to_owned()))?;
        let cell = replay_shared(ctx.log, b)?;
        if cell.owner != Ownership::Owned(ctx.pid) {
            return Err(MachineError::Stuck(format!(
                "mset({b}) by {} without ownership",
                ctx.pid
            )));
        }
        ctx.abs.set(&local_copy_key(ctx.pid, b), v);
        Ok(Val::Unit)
    })
}

/// `FAI_t(b)`: the hardware fetch-and-increment of the ticket lock's
/// next-ticket field (§2). The returned ticket is "calculated by a function
/// that counts the fetch-and-increment events in `l`".
pub fn fai_t_prim() -> PrimSpec {
    PrimSpec::atomic("fai_t", |ctx, args| {
        let b = arg_loc(args, 0, "fai_t")?;
        ctx.emit(EventKind::FaiT(b));
        let ticket = my_ticket(ctx.log, b, ctx.pid)
            .expect("fai_t just emitted an event for this pid");
        Ok(Val::Int(ticket as i64))
    })
}

/// `get_n(b)`: reads the now-serving field of the ticket lock.
pub fn get_n_prim() -> PrimSpec {
    PrimSpec::atomic("get_n", |ctx, args| {
        let b = arg_loc(args, 0, "get_n")?;
        ctx.emit(EventKind::GetN(b));
        Ok(Val::Int(replay_ticket(ctx.log, b).serving as i64))
    })
}

/// `inc_n(b)`: increments the now-serving field (lock release). When
/// executed in the critical state (after `hold`) the machine skips its
/// query point, giving §2's "no need to ask E"; outside the protocol it
/// is preemptible like any hardware instruction.
pub fn inc_n_prim() -> PrimSpec {
    PrimSpec::atomic("inc_n", |ctx, args| {
        let b = arg_loc(args, 0, "inc_n")?;
        ctx.emit(EventKind::IncN(b));
        Ok(Val::Unit)
    })
}

/// `hold(b)`: "a no-op primitive ... called by `acq` to announce that the
/// lock has been taken" (§2). A shared primitive with its own query point
/// (the `?E, !i.hold` move of the `φ′_acq` automaton); *entering* the
/// critical state happens with the emitted event.
pub fn hold_prim() -> PrimSpec {
    PrimSpec::atomic("hold", |ctx, args| {
        let b = arg_loc(args, 0, "hold")?;
        ctx.emit(EventKind::Hold(b));
        Ok(Val::Unit)
    })
}

/// Builds the CPU-local interface `Lx86` with the push/pull primitives,
/// local-copy accessors, and the ticket-lock hardware primitives. All
/// state is reconstructed from the log by replay.
pub fn lx86_interface() -> LayerInterface {
    LayerInterface::builder("Lx86")
        .prim(pull_prim())
        .prim(push_prim())
        .prim(mget_prim())
        .prim(mset_prim())
        .prim(fai_t_prim())
        .prim(get_n_prim())
        .prim(inc_n_prim())
        .prim(hold_prim())
        .critical(in_critical_l0)
        .init_abs(AbsState::new())
        .build()
}

#[cfg(test)]
#[allow(clippy::cloned_ref_to_slice_refs)]
mod tests {
    use super::*;
    use ccal_core::env::EnvContext;
    use ccal_core::machine::LayerMachine;
    use ccal_core::strategy::RoundRobinScheduler;
    use std::sync::Arc;

    fn machine(pid: u32) -> LayerMachine {
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2)));
        LayerMachine::new(lx86_interface(), Pid(pid), env)
    }

    #[test]
    fn pull_modify_push_round_trip() {
        let b = Val::Loc(Loc(3));
        let mut m = machine(0);
        assert!(m.call_prim("pull", &[b.clone()]).unwrap().is_undef());
        m.call_prim("mset", &[b.clone(), Val::Int(42)]).unwrap();
        assert_eq!(m.call_prim("mget", &[b.clone()]).unwrap(), Val::Int(42));
        m.call_prim("push", &[b.clone()]).unwrap();
        // A second pull observes the pushed value.
        assert_eq!(m.call_prim("pull", &[b]).unwrap(), Val::Int(42));
    }

    #[test]
    fn access_without_ownership_is_stuck() {
        let b = Val::Loc(Loc(0));
        let mut m = machine(0);
        assert!(matches!(
            m.call_prim("mget", &[b.clone()]),
            Err(MachineError::Stuck(_))
        ));
        assert!(matches!(
            m.call_prim("push", &[b]),
            Err(MachineError::Replay(_))
        ));
    }

    #[test]
    fn double_pull_by_env_is_a_race() {
        use ccal_core::event::Event;
        use ccal_core::strategy::ScriptPlayer;
        // Environment CPU 1 pulls b before we do: our pull gets stuck.
        let b = Loc(0);
        let noisy = ScriptPlayer::new(Pid(1), vec![vec![Event::new(Pid(1), EventKind::Pull(b))]]);
        // Schedule CPU 1 first so its pull lands before ours.
        let env = EnvContext::new(Arc::new(ccal_core::strategy::ScriptScheduler::new(
            vec![Pid(1)],
            vec![Pid(0), Pid(1)],
        )))
        .with_player(Pid(1), Arc::new(noisy));
        let mut m = LayerMachine::new(lx86_interface(), Pid(0), env);
        let err = m.call_prim("pull", &[Val::Loc(b)]).unwrap_err();
        assert!(matches!(err, MachineError::Replay(_)));
    }

    #[test]
    fn ticket_prims_compute_from_log() {
        let b = Val::Loc(Loc(7));
        let mut m = machine(0);
        assert_eq!(m.call_prim("fai_t", &[b.clone()]).unwrap(), Val::Int(0));
        assert_eq!(m.call_prim("get_n", &[b.clone()]).unwrap(), Val::Int(0));
        m.call_prim("hold", &[b.clone()]).unwrap();
        m.call_prim("inc_n", &[b.clone()]).unwrap();
        assert_eq!(m.call_prim("get_n", &[b.clone()]).unwrap(), Val::Int(1));
        assert_eq!(m.call_prim("fai_t", &[b]).unwrap(), Val::Int(1));
    }

    #[test]
    fn critical_state_tracks_ownership_and_holds() {
        let b = Loc(2);
        let mut log = Log::new();
        assert!(!in_critical_l0(Pid(0), &log));
        log.append(ccal_core::event::Event::new(Pid(0), EventKind::Pull(b)));
        assert!(in_critical_l0(Pid(0), &log));
        log.append(ccal_core::event::Event::new(
            Pid(0),
            EventKind::Push(b, Val::Int(1)),
        ));
        assert!(!in_critical_l0(Pid(0), &log));
        log.append(ccal_core::event::Event::new(Pid(0), EventKind::Hold(b)));
        assert!(in_critical_l0(Pid(0), &log));
        log.append(ccal_core::event::Event::new(Pid(0), EventKind::IncN(b)));
        assert!(!in_critical_l0(Pid(0), &log));
    }

    #[test]
    fn owned_locs_tracks_multiple_locations() {
        use ccal_core::event::Event;
        let log = Log::from_events([
            Event::new(Pid(0), EventKind::Pull(Loc(1))),
            Event::new(Pid(0), EventKind::Pull(Loc(2))),
            Event::new(Pid(0), EventKind::Push(Loc(1), Val::Unit)),
        ]);
        let owned = owned_locs(&log, Pid(0));
        assert!(!owned.contains(&Loc(1)));
        assert!(owned.contains(&Loc(2)));
    }
}
