//! CompCert-style block-based memory.
//!
//! "In the CompCert memory model, whenever a function is called, a fresh
//! memory block has to be allocated in the memory for its stack frame"
//! (§5.5). A [`Memory`] is a growing sequence of blocks; each block is
//! either *live* with a bounded array of values and full permissions, or
//! *empty* — a permissionless placeholder, as used by the thread-safe
//! linking construction ("these empty blocks are the ones without any
//! access permissions", §5.5).
//!
//! The algebraic composition `⊛` over memories (Fig. 12) lives in
//! `ccal-compcertx::memalg`; this module provides the memory states it
//! composes.

use std::fmt;

use ccal_core::val::Val;

/// A machine address: block identifier plus offset in value slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr {
    /// Block identifier (index into the memory's block sequence).
    pub block: u32,
    /// Offset within the block, in slots.
    pub off: u32,
}

impl Addr {
    /// Creates an address.
    pub fn new(block: u32, off: u32) -> Self {
        Self { block, off }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.block, self.off)
    }
}

/// One memory block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Block {
    /// A live block with data and full permissions.
    Live(Vec<Val>),
    /// An empty placeholder block without permissions (§5.5): loads and
    /// stores on it fail.
    Empty,
}

impl Block {
    /// Whether the block is a permissionless placeholder.
    pub fn is_empty_placeholder(&self) -> bool {
        matches!(self, Block::Empty)
    }
}

/// Errors of memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The block does not exist.
    BadBlock {
        /// Offending address.
        addr: Addr,
        /// Number of blocks in the memory.
        nb: u32,
    },
    /// The offset is outside the block.
    BadOffset {
        /// Offending address.
        addr: Addr,
        /// The block's size in slots.
        size: usize,
    },
    /// The block is an empty placeholder (no permissions).
    NoPermission {
        /// Offending address.
        addr: Addr,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::BadBlock { addr, nb } => {
                write!(f, "access to {addr} but memory has {nb} blocks")
            }
            MemError::BadOffset { addr, size } => {
                write!(f, "access to {addr} outside block of size {size}")
            }
            MemError::NoPermission { addr } => {
                write!(f, "access to {addr} in a permissionless placeholder block")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// A block-structured memory state.
///
/// # Examples
///
/// ```
/// use ccal_machine::mem::{Addr, Memory};
/// use ccal_core::val::Val;
///
/// let mut m = Memory::new();
/// let b = m.alloc(2);
/// m.store(Addr::new(b, 0), Val::Int(7))?;
/// assert_eq!(m.load(Addr::new(b, 0))?, Val::Int(7));
/// assert!(m.load(Addr::new(b, 1))?.is_undef());
/// # Ok::<(), ccal_machine::mem::MemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Memory {
    blocks: Vec<Block>,
}

impl Memory {
    /// An empty memory (no blocks).
    pub fn new() -> Self {
        Self::default()
    }

    /// `nb(m)`: the total number of blocks (Fig. 12).
    pub fn nb(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// Allocates a fresh live block of `size` slots (all `Undef`),
    /// returning its identifier — CompCert's `alloc(m, l, h)` with
    /// `size = h - l`.
    pub fn alloc(&mut self, size: usize) -> u32 {
        self.blocks.push(Block::Live(vec![Val::Undef; size]));
        self.nb() - 1
    }

    /// `liftnb(m, n)`: extends the memory with `n` empty placeholder
    /// blocks (§5.5, Fig. 12), returning the id of the first one (if
    /// `n > 0`).
    pub fn liftnb(&mut self, n: u32) -> Option<u32> {
        let first = if n > 0 { Some(self.nb()) } else { None };
        for _ in 0..n {
            self.blocks.push(Block::Empty);
        }
        first
    }

    /// The block with identifier `b`, if it exists.
    pub fn block(&self, b: u32) -> Option<&Block> {
        self.blocks.get(b as usize)
    }

    /// Loads the value at `addr` — `ld(m, ℓ)` of Fig. 12.
    ///
    /// # Errors
    ///
    /// [`MemError`] on a missing block, out-of-range offset, or
    /// permissionless placeholder.
    pub fn load(&self, addr: Addr) -> Result<Val, MemError> {
        match self.blocks.get(addr.block as usize) {
            None => Err(MemError::BadBlock {
                addr,
                nb: self.nb(),
            }),
            Some(Block::Empty) => Err(MemError::NoPermission { addr }),
            Some(Block::Live(data)) => data.get(addr.off as usize).cloned().ok_or(
                MemError::BadOffset {
                    addr,
                    size: data.len(),
                },
            ),
        }
    }

    /// Stores `v` at `addr` — `st(m, ℓ, v)` of Fig. 12.
    ///
    /// # Errors
    ///
    /// [`MemError`] on a missing block, out-of-range offset, or
    /// permissionless placeholder.
    pub fn store(&mut self, addr: Addr, v: Val) -> Result<(), MemError> {
        let nb = self.nb();
        match self.blocks.get_mut(addr.block as usize) {
            None => Err(MemError::BadBlock { addr, nb }),
            Some(Block::Empty) => Err(MemError::NoPermission { addr }),
            Some(Block::Live(data)) => {
                let size = data.len();
                match data.get_mut(addr.off as usize) {
                    Some(slot) => {
                        *slot = v;
                        Ok(())
                    }
                    None => Err(MemError::BadOffset { addr, size }),
                }
            }
        }
    }

    /// Iterates over `(block id, block)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (i as u32, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_sequential_ids() {
        let mut m = Memory::new();
        assert_eq!(m.alloc(1), 0);
        assert_eq!(m.alloc(1), 1);
        assert_eq!(m.nb(), 2);
    }

    #[test]
    fn load_store_round_trip() {
        let mut m = Memory::new();
        let b = m.alloc(3);
        m.store(Addr::new(b, 2), Val::Int(5)).unwrap();
        assert_eq!(m.load(Addr::new(b, 2)).unwrap(), Val::Int(5));
    }

    #[test]
    fn fresh_slots_are_undef() {
        let mut m = Memory::new();
        let b = m.alloc(1);
        assert!(m.load(Addr::new(b, 0)).unwrap().is_undef());
    }

    #[test]
    fn out_of_range_errors() {
        let mut m = Memory::new();
        let b = m.alloc(1);
        assert!(matches!(
            m.load(Addr::new(b, 9)),
            Err(MemError::BadOffset { .. })
        ));
        assert!(matches!(
            m.load(Addr::new(99, 0)),
            Err(MemError::BadBlock { .. })
        ));
    }

    #[test]
    fn placeholders_have_no_permissions() {
        let mut m = Memory::new();
        let first = m.liftnb(2).unwrap();
        assert_eq!(m.nb(), 2);
        assert!(matches!(
            m.load(Addr::new(first, 0)),
            Err(MemError::NoPermission { .. })
        ));
        assert!(matches!(
            m.store(Addr::new(first, 0), Val::Int(1)),
            Err(MemError::NoPermission { .. })
        ));
    }

    #[test]
    fn liftnb_zero_is_noop() {
        let mut m = Memory::new();
        assert_eq!(m.liftnb(0), None);
        assert_eq!(m.nb(), 0);
    }
}
