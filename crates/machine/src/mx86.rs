//! The multiprocessor hardware machine model `Mx86` (§3.1).
//!
//! `Mx86`'s state is the tuple `(c, fρ, m, a, l)`: current CPU, per-CPU
//! private states, shared memory, abstract state and global log (Fig. 7).
//! Unlike the layer interface `Lx86` — where all shared state is a
//! function of the log — `Mx86` maintains the shared memory, ownership
//! map and atomic lock words *concretely and in place*, updating them on
//! every program transition, and records events chronologically alongside.
//! Hardware scheduling transitions "can be arbitrarily and
//! nondeterministically interleaved" with program transitions; the
//! verifier enumerates them as scripted schedulers.
//!
//! [`crate::linking::check_multicore_linking`] is the executable Theorem
//! 3.1: on every bounded interleaving, running a program on `Mx86` and on
//! the layer machine over `Lx86[D]` produces the same log and results —
//! i.e. the replay-function semantics faithfully abstracts the in-place
//! hardware semantics.

use std::collections::BTreeMap;

use ccal_core::abs::AbsState;
use ccal_core::conc::{ConcurrentMachine, ConcurrentOutcome, ThreadScript};
use ccal_core::env::EnvContext;
use ccal_core::event::EventKind;
use ccal_core::id::{Loc, Pid, PidSet};
use ccal_core::layer::{LayerInterface, PrimCtx, PrimSpec};
use ccal_core::machine::MachineError;
use ccal_core::strategy::{RoundRobinScheduler, ScriptScheduler};
use ccal_core::val::Val;

use crate::lx86::local_copy_key;

fn own_key(b: Loc) -> String {
    format!("own[{b}]")
}

fn shared_key(b: Loc) -> String {
    format!("shared[{b}]")
}

fn tkt_t_key(b: Loc) -> String {
    format!("tkt_t[{b}]")
}

fn tkt_n_key(b: Loc) -> String {
    format!("tkt_n[{b}]")
}

fn arg_loc(args: &[Val], prim: &str) -> Result<Loc, MachineError> {
    args.first()
        .ok_or_else(|| MachineError::Stuck(format!("{prim}: missing location argument")))?
        .as_loc()
        .map_err(MachineError::from)
}

fn owner_of(ctx: &PrimCtx<'_>, b: Loc) -> Option<Pid> {
    match ctx.abs.get_or_undef(&own_key(b)) {
        Val::Int(p) if p >= 0 => Some(Pid(p as u32)),
        _ => None,
    }
}

fn int_field(ctx: &PrimCtx<'_>, key: &str) -> i64 {
    match ctx.abs.get_or_undef(key) {
        Val::Int(i) => i,
        _ => 0,
    }
}

/// Builds the hardware machine interface: same primitives and events as
/// [`crate::lx86::lx86_interface`], but with shared state maintained
/// concretely in the abstract state instead of replayed from the log —
/// and *fully preemptible*: every shared primitive is a hardware
/// preemption point and there is no critical-state protection. (The
/// critical-state discipline of §2 is a property of the layer interfaces
/// built above the hardware, not of the hardware itself: `Mx86`'s
/// transitions are "arbitrarily and nondeterministically interleaved",
/// §3.1.)
pub fn mx86_hw_interface() -> LayerInterface {
    LayerInterface::builder("Mx86")
        .prim(PrimSpec::atomic("pull", |ctx, args| {
            let b = arg_loc(args, "pull")?;
            if owner_of(ctx, b).is_some() {
                return Err(MachineError::Stuck(format!(
                    "hw pull({b}) by {}: location not free (data race)",
                    ctx.pid
                )));
            }
            ctx.abs.set(&own_key(b), Val::Int(i64::from(ctx.pid.0)));
            let v = ctx.abs.get_or_undef(&shared_key(b));
            ctx.abs.set(&local_copy_key(ctx.pid, b), v.clone());
            ctx.emit(EventKind::Pull(b));
            Ok(v)
        }))
        .prim(PrimSpec::atomic("push", |ctx, args| {
            let b = arg_loc(args, "push")?;
            if owner_of(ctx, b) != Some(ctx.pid) {
                return Err(MachineError::Stuck(format!(
                    "hw push({b}) by {} without ownership",
                    ctx.pid
                )));
            }
            let v = ctx.abs.get_or_undef(&local_copy_key(ctx.pid, b));
            ctx.abs.set(&shared_key(b), v.clone());
            ctx.abs.set(&own_key(b), Val::Int(-1));
            ctx.emit(EventKind::Push(b, v));
            Ok(Val::Unit)
        }))
        .prim(PrimSpec::private("mget", |ctx, args| {
            let b = arg_loc(args, "mget")?;
            if owner_of(ctx, b) != Some(ctx.pid) {
                return Err(MachineError::Stuck(format!(
                    "hw mget({b}) by {} without ownership",
                    ctx.pid
                )));
            }
            Ok(ctx.abs.get_or_undef(&local_copy_key(ctx.pid, b)))
        }))
        .prim(PrimSpec::private("mset", |ctx, args| {
            let b = arg_loc(args, "mset")?;
            let v = args
                .get(1)
                .cloned()
                .ok_or_else(|| MachineError::Stuck("mset: missing value".to_owned()))?;
            if owner_of(ctx, b) != Some(ctx.pid) {
                return Err(MachineError::Stuck(format!(
                    "hw mset({b}) by {} without ownership",
                    ctx.pid
                )));
            }
            ctx.abs.set(&local_copy_key(ctx.pid, b), v);
            Ok(Val::Unit)
        }))
        .prim(PrimSpec::atomic("fai_t", |ctx, args| {
            let b = arg_loc(args, "fai_t")?;
            let t = int_field(ctx, &tkt_t_key(b));
            ctx.abs.set(&tkt_t_key(b), Val::Int(t + 1));
            ctx.emit(EventKind::FaiT(b));
            Ok(Val::Int(t))
        }))
        .prim(PrimSpec::atomic("get_n", |ctx, args| {
            let b = arg_loc(args, "get_n")?;
            ctx.emit(EventKind::GetN(b));
            Ok(Val::Int(int_field(ctx, &tkt_n_key(b))))
        }))
        .prim(PrimSpec::atomic("inc_n", |ctx, args| {
            let b = arg_loc(args, "inc_n")?;
            let n = int_field(ctx, &tkt_n_key(b));
            ctx.abs.set(&tkt_n_key(b), Val::Int(n + 1));
            ctx.emit(EventKind::IncN(b));
            Ok(Val::Unit)
        }))
        .prim(PrimSpec::atomic("hold", |ctx, args| {
            let b = arg_loc(args, "hold")?;
            ctx.emit(EventKind::Hold(b));
            Ok(Val::Unit)
        }))
        .init_abs(AbsState::new())
        .build()
}

/// A whole-machine `Mx86` program: one script of function/primitive calls
/// per CPU.
pub type Mx86Program = BTreeMap<Pid, ThreadScript>;

/// The `Mx86` machine: `ncpus` CPUs, all focused, interleaved by an
/// explicit hardware schedule.
#[derive(Debug, Clone)]
pub struct Mx86Machine {
    /// Number of CPUs (the domain `D` is `{0, .., ncpus-1}`).
    pub ncpus: u32,
    iface: LayerInterface,
    fuel: u64,
}

impl Mx86Machine {
    /// Creates a machine with `ncpus` CPUs running over the hardware
    /// interface.
    pub fn new(ncpus: u32) -> Self {
        Self {
            ncpus,
            iface: mx86_hw_interface(),
            fuel: ConcurrentMachine::DEFAULT_FUEL,
        }
    }

    /// Creates a machine with the same shape but running over a custom
    /// interface (used by linking checks to swap in `Lx86[D]`, and by the
    /// objects crate to extend the hardware interface).
    pub fn with_interface(ncpus: u32, iface: LayerInterface) -> Self {
        Self {
            ncpus,
            iface,
            fuel: ConcurrentMachine::DEFAULT_FUEL,
        }
    }

    /// Overrides the turn budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// The machine's interface.
    pub fn iface(&self) -> &LayerInterface {
        &self.iface
    }

    /// The machine's CPU domain.
    pub fn domain(&self) -> Vec<Pid> {
        (0..self.ncpus).map(Pid).collect()
    }

    /// Runs `program` under a specific hardware schedule prefix (completed
    /// by fair round-robin). The behavior `[[P]]_{Mx86}` is the set of logs
    /// over all schedules; enumerate prefixes to explore it.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] from the run — in particular `Stuck` on a data
    /// race, and `OutOfFuel` on starvation under the given schedule.
    pub fn run_with_schedule(
        &self,
        program: &Mx86Program,
        schedule: &[Pid],
    ) -> Result<ConcurrentOutcome, MachineError> {
        let env = EnvContext::new(std::sync::Arc::new(ScriptScheduler::new(
            schedule.to_vec(),
            self.domain(),
        )));
        let machine = ConcurrentMachine::new(
            self.iface.clone(),
            PidSet::from_pids(self.domain()),
            env,
        )
        .with_fuel(self.fuel);
        machine.run(program)
    }

    /// Runs `program` under plain round-robin scheduling.
    ///
    /// # Errors
    ///
    /// See [`Mx86Machine::run_with_schedule`].
    pub fn run_round_robin(&self, program: &Mx86Program) -> Result<ConcurrentOutcome, MachineError> {
        let env = EnvContext::new(std::sync::Arc::new(RoundRobinScheduler::new(self.domain())));
        let machine = ConcurrentMachine::new(
            self.iface.clone(),
            PidSet::from_pids(self.domain()),
            env,
        )
        .with_fuel(self.fuel);
        machine.run(program)
    }
}

#[cfg(test)]
#[allow(clippy::cloned_ref_to_slice_refs)]
mod tests {
    use super::*;

    fn script(calls: &[(&str, Vec<Val>)]) -> ThreadScript {
        calls
            .iter()
            .map(|(n, a)| ((*n).to_owned(), a.clone()))
            .collect()
    }

    #[test]
    fn hw_pull_push_updates_shared_memory_in_place() {
        let m = Mx86Machine::new(2);
        let b = Val::Loc(Loc(0));
        let mut prog = Mx86Program::new();
        prog.insert(
            Pid(0),
            script(&[
                ("pull", vec![b.clone()]),
                ("mset", vec![b.clone(), Val::Int(9)]),
                ("push", vec![b.clone()]),
            ]),
        );
        let out = m.run_round_robin(&prog).unwrap();
        assert_eq!(out.abs.get_or_undef("shared[b0]"), Val::Int(9));
        assert_eq!(out.log.count_by(Pid(0)), 2, "pull + push events");
    }

    #[test]
    fn hw_fai_is_atomic_across_cpus() {
        let m = Mx86Machine::new(2);
        let b = Val::Loc(Loc(1));
        let mut prog = Mx86Program::new();
        prog.insert(
            Pid(0),
            script(&[("fai_t", vec![b.clone()]), ("fai_t", vec![b.clone()])]),
        );
        prog.insert(Pid(1), script(&[("fai_t", vec![b.clone()])]));
        let out = m.run_round_robin(&prog).unwrap();
        // Three FAIs: tickets are 0, 1, 2 in some order; counter ends at 3.
        assert_eq!(out.abs.get_or_undef("tkt_t[b1]"), Val::Int(3));
        let mut tickets: Vec<i64> = out
            .rets
            .values()
            .flatten()
            .map(|v| v.as_int().unwrap())
            .collect();
        tickets.sort_unstable();
        assert_eq!(tickets, vec![0, 1, 2]);
    }

    #[test]
    fn racy_concurrent_pull_gets_stuck() {
        // Both CPUs pull the same location; with round-robin the second
        // pull happens while the first CPU still owns it.
        let m = Mx86Machine::new(2);
        let b = Val::Loc(Loc(0));
        let mut prog = Mx86Program::new();
        prog.insert(Pid(0), script(&[("pull", vec![b.clone()])]));
        prog.insert(Pid(1), script(&[("pull", vec![b.clone()])]));
        let err = m.run_round_robin(&prog).unwrap_err();
        assert!(matches!(err, MachineError::Stuck(_)));
    }

    #[test]
    fn schedules_change_interleavings() {
        let m = Mx86Machine::new(2);
        let b = Val::Loc(Loc(0));
        let mut prog = Mx86Program::new();
        prog.insert(Pid(0), script(&[("fai_t", vec![b.clone()])]));
        prog.insert(Pid(1), script(&[("fai_t", vec![b.clone()])]));
        let out01 = m
            .run_with_schedule(&prog, &[Pid(0), Pid(0), Pid(1), Pid(1)])
            .unwrap();
        let out10 = m
            .run_with_schedule(&prog, &[Pid(1), Pid(1), Pid(0), Pid(0)])
            .unwrap();
        assert_eq!(out01.rets[&Pid(0)], vec![Val::Int(0)]);
        assert_eq!(out10.rets[&Pid(0)], vec![Val::Int(1)]);
    }
}
