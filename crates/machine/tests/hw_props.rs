//! Property tests of the hardware machine `Mx86`: determinism per
//! schedule, permutation semantics of fetch-and-increment, and
//! schedule-sensitivity of outcomes.

use ccal_core::id::{Loc, Pid};
use ccal_core::val::Val;
use ccal_machine::linking::schedules;
use ccal_machine::mx86::{Mx86Machine, Mx86Program};
use proptest::prelude::*;

fn fai_program(ncpus: u32, per_cpu: usize) -> Mx86Program {
    let mut prog = Mx86Program::new();
    for c in 0..ncpus {
        prog.insert(
            Pid(c),
            (0..per_cpu)
                .map(|_| ("fai_t".to_owned(), vec![Val::Loc(Loc(0))]))
                .collect(),
        );
    }
    prog
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Given an environment context (a schedule), execution is
    /// deterministic — the §2 claim made executable: running the same
    /// program twice under the same schedule yields identical logs and
    /// results.
    #[test]
    fn execution_is_deterministic_per_schedule(seed in 0_usize..64) {
        let m = Mx86Machine::new(2);
        let program = fai_program(2, 2);
        let all = schedules(&m.domain(), 4, 64);
        let schedule = &all[seed % all.len()];
        let a = m.run_with_schedule(&program, schedule).expect("runs");
        let b = m.run_with_schedule(&program, schedule).expect("runs");
        prop_assert_eq!(a.log, b.log);
        prop_assert_eq!(a.rets, b.rets);
    }

    /// Whatever the interleaving, the tickets handed out by `fai_t` are a
    /// permutation of 0..n — atomicity of the hardware fetch-and-add.
    #[test]
    fn fai_hands_out_a_permutation(seed in 0_usize..256, ncpus in 1_u32..4, per_cpu in 1_usize..4) {
        let m = Mx86Machine::new(ncpus);
        let program = fai_program(ncpus, per_cpu);
        let all = schedules(&m.domain(), 4, 256);
        let schedule = &all[seed % all.len()];
        let out = m.run_with_schedule(&program, schedule).expect("runs");
        let mut tickets: Vec<i64> = out
            .rets
            .values()
            .flatten()
            .map(|v| v.as_int().expect("fai returns an int"))
            .collect();
        tickets.sort_unstable();
        let expected: Vec<i64> = (0..(ncpus as usize * per_cpu) as i64).collect();
        prop_assert_eq!(tickets, expected);
    }
}

#[test]
fn different_schedules_can_produce_different_outcomes() {
    // Nondeterminism lives in the schedule choice (and only there).
    let m = Mx86Machine::new(2);
    let program = fai_program(2, 1);
    let mut distinct = std::collections::BTreeSet::new();
    for schedule in schedules(&m.domain(), 4, 16) {
        let out = m.run_with_schedule(&program, &schedule).expect("runs");
        distinct.insert(format!("{:?}", out.rets));
    }
    assert!(distinct.len() > 1, "schedules must be able to change who wins");
}
