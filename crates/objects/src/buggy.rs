//! Intentionally buggy objects — seeded-defect fixtures for the
//! failure-forensics pipeline.
//!
//! Each fixture is a small object (or object pair) with a planted defect
//! that one of the five bounded checkers detects under *some* adversarial
//! environment contexts. The `ccal-forensics` crate runs the checker over
//! the full context grid, captures the failing witness log, reifies it
//! into a scripted context, delta-debugs it to a 1-minimal counterexample,
//! and replays the serialized artifact — these fixtures are the seeded
//! ground truth that exercise that whole pipeline (and the corpus of
//! golden artifacts checked into `forensics/corpus/`).
//!
//! The defects are chosen so that the failure condition is *monotone* in
//! the environment's events wherever possible: adding extra environment
//! noise to a failing context keeps it failing, which lets the property
//! tests generate junk-augmented contexts without re-searching for a
//! failure.

use std::collections::BTreeMap;

use ccal_core::contexts::ContextGen;
use ccal_core::env::EnvContext;
use ccal_core::event::EventKind;
use ccal_core::id::{Loc, Pid, QId};
use ccal_core::layer::{LayerInterface, PrimCtx, PrimRun, PrimSpec, PrimStep};
use ccal_core::log::Log;
use ccal_core::machine::MachineError;
use ccal_core::strategy::ScratchPlayer;
use ccal_core::val::Val;

/// The two scratch locations the `sim` fixture's lower machine leaks.
pub const SCRATCH_A: Loc = Loc(50);
/// See [`SCRATCH_A`].
pub const SCRATCH_B: Loc = Loc(51);
/// The location the `live` fixture's waiter watches.
pub const WAIT_LOC: Loc = Loc(60);
/// The location the `seqref` fixture's counter leaks.
pub const LEAK_LOC: Loc = Loc(70);
/// The scratch location of the `linz` fixture's noise player.
pub const NOISE_LOC: Loc = Loc(77);

// ---------------------------------------------------------------------
// sim: "scratch-sensitive" — a lower machine whose return value leaks
// the environment's scratch traffic, refined against an upper strategy
// that always returns 0.
// ---------------------------------------------------------------------

#[derive(Clone)]
struct TwoProbeOp {
    queries: u32,
}

impl PrimRun for TwoProbeOp {
    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        Some(Box::new(self.clone()))
    }

    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        if self.queries < 2 {
            self.queries += 1;
            return Ok(PrimStep::Query);
        }
        let has = |loc: Loc| {
            ctx.log
                .iter()
                .any(|e| matches!(e.kind, EventKind::Push(l, _) if l == loc))
        };
        let leaked = has(SCRATCH_A) && has(SCRATCH_B);
        ctx.emit(EventKind::Prim("op".into(), vec![]));
        Ok(PrimStep::Done(Val::Int(i64::from(leaked))))
    }
}

/// The buggy lower interface: `op` queries the environment twice and then
/// returns 1 iff *both* scratch locations have been pushed — observable
/// environment state leaking into the return value.
pub fn scratch_sensitive_lower() -> LayerInterface {
    LayerInterface::builder("L-scratch-lo")
        .prim(PrimSpec::strategy("op", true, |_, _| {
            Box::new(TwoProbeOp { queries: 0 })
        }))
        .build()
}

/// The upper specification: `op` always returns 0.
pub fn scratch_sensitive_upper() -> LayerInterface {
    LayerInterface::builder("L-scratch-hi")
        .prim(PrimSpec::atomic("op", |ctx, _| {
            ctx.emit(EventKind::Prim("op".into(), vec![]));
            Ok(Val::Int(0))
        }))
        .build()
}

/// The context family: two scratch players on [`SCRATCH_A`]/[`SCRATCH_B`]
/// over every schedule prefix of length 3.
pub fn scratch_sensitive_contexts() -> Vec<EnvContext> {
    ContextGen::new(vec![Pid(0), Pid(1), Pid(2)])
        .with_player(Pid(1), std::sync::Arc::new(ScratchPlayer::new(Pid(1), SCRATCH_A)))
        .with_player(Pid(2), std::sync::Arc::new(ScratchPlayer::new(Pid(2), SCRATCH_B)))
        .with_schedule_len(3)
        .with_por(true)
        .contexts()
}

// ---------------------------------------------------------------------
// live: "impatient-waiter" — a strategy that waits for two pushes on
// WAIT_LOC, declared with a step bound far too tight to ever hold.
// ---------------------------------------------------------------------

#[derive(Clone)]
struct WaitForPushes;

impl PrimRun for WaitForPushes {
    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        Some(Box::new(self.clone()))
    }

    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        let n = ctx
            .log
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Push(l, _) if l == WAIT_LOC))
            .count();
        if n >= 2 {
            ctx.emit(EventKind::Prim("waited".into(), vec![]));
            Ok(PrimStep::Done(Val::Unit))
        } else {
            Ok(PrimStep::Query)
        }
    }
}

/// The buggy interface: `wait` blocks until [`WAIT_LOC`] has been pushed
/// twice — at least two environment turns, so the declared bound of
/// [`IMPATIENT_BOUND`] scheduling steps can never hold.
pub fn impatient_waiter_iface() -> LayerInterface {
    LayerInterface::builder("L-impatient")
        .prim(PrimSpec::strategy("wait", true, |_, _| Box::new(WaitForPushes)))
        .build()
}

/// The (unsatisfiable) liveness bound the fixture claims.
pub const IMPATIENT_BOUND: u64 = 3;

/// Machine fuel for the fixture — small, so shrunk contexts whose waiter
/// starves fail fast with `OutOfFuel` instead of spinning.
pub const IMPATIENT_FUEL: u64 = 500;

/// The context family: one scratch player feeding [`WAIT_LOC`].
pub fn impatient_waiter_contexts() -> Vec<EnvContext> {
    ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), std::sync::Arc::new(ScratchPlayer::new(Pid(1), WAIT_LOC)))
        .with_schedule_len(3)
        .with_por(true)
        .contexts()
}

// ---------------------------------------------------------------------
// race: "unlocked-pair" — two participants pull/push the same location
// with no lock; preemption between the pulls races.
// ---------------------------------------------------------------------

/// The racing programs: both participants `pull` then `push` [`Loc`]`(0)`.
pub fn unlocked_pair_programs() -> BTreeMap<Pid, ccal_core::conc::ThreadScript> {
    let b = Val::Loc(Loc(0));
    let mut programs = BTreeMap::new();
    for c in 0..2 {
        programs.insert(
            Pid(c),
            vec![
                ("pull".to_owned(), vec![b.clone()]),
                ("push".to_owned(), vec![b.clone()]),
            ],
        );
    }
    programs
}

/// The context family: every schedule prefix of length 4 over the pair.
pub fn unlocked_pair_contexts() -> Vec<EnvContext> {
    ContextGen::new(vec![Pid(0), Pid(1)])
        .with_schedule_len(4)
        .with_por(true)
        .contexts()
}

// ---------------------------------------------------------------------
// linz: "lifo-queue" — an "atomic queue" whose deq pops the *newest*
// enqueued value; linearizable histories must be FIFO.
// ---------------------------------------------------------------------

/// The LIFO replay the buggy queue uses: the value `deq` at position `at`
/// returns, treating the `EnQ`/`DeQ` history as a *stack*.
pub fn lifo_deq_result(log: &Log, at: usize) -> Val {
    let mut stack: Vec<Val> = Vec::new();
    for (i, e) in log.iter().enumerate() {
        if i >= at {
            break;
        }
        match &e.kind {
            EventKind::EnQ(_, v) => stack.push(v.clone()),
            EventKind::DeQ(_) => {
                stack.pop();
            }
            _ => {}
        }
    }
    stack.pop().unwrap_or(Val::Undef)
}

/// The buggy queue interface: `enq` is correct, `deq` replays the history
/// as a stack (LIFO) instead of a queue.
pub fn lifo_queue_iface() -> LayerInterface {
    LayerInterface::builder("Lq-lifo")
        .prim(PrimSpec::atomic("enq", |ctx, args| {
            let q = QId(args[0].as_int()? as u32);
            ctx.emit(EventKind::EnQ(q, args[1].clone()));
            Ok(Val::Unit)
        }))
        .prim(PrimSpec::atomic("deq", |ctx, args| {
            let q = QId(args[0].as_int()? as u32);
            ctx.emit(EventKind::DeQ(q));
            Ok(lifo_deq_result(ctx.log, ctx.log.len() - 1))
        }))
        .build()
}

/// The client programs: `p0` enqueues 10 and dequeues, `p1` enqueues 20.
/// Interleavings where 20 lands between `p0`'s two calls expose the LIFO
/// pop (observed 20, FIFO predicts 10).
pub fn lifo_queue_programs() -> BTreeMap<Pid, ccal_core::conc::ThreadScript> {
    let mut programs = BTreeMap::new();
    programs.insert(
        Pid(0),
        vec![
            ("enq".to_owned(), vec![Val::Int(0), Val::Int(10)]),
            ("deq".to_owned(), vec![Val::Int(0)]),
        ],
    );
    programs.insert(
        Pid(1),
        vec![("enq".to_owned(), vec![Val::Int(0), Val::Int(20)])],
    );
    programs
}

/// The context family: the two clients plus an unrelated scratch player,
/// so shrinking has genuine noise to strip.
pub fn lifo_queue_contexts() -> Vec<EnvContext> {
    ContextGen::new(vec![Pid(0), Pid(1), Pid(2)])
        .with_player(Pid(2), std::sync::Arc::new(ScratchPlayer::new(Pid(2), NOISE_LOC)))
        .with_schedule_len(3)
        .with_por(true)
        .contexts()
}

// ---------------------------------------------------------------------
// seqref: "env-leaky-counter" — a counter whose return value gains a
// spurious +1 once the environment has pushed LEAK_LOC.
// ---------------------------------------------------------------------

/// The buggy implementation: `bump` increments its private counter but
/// returns one extra once [`LEAK_LOC`] has been pushed by anyone.
pub fn env_leaky_counter_impl() -> LayerInterface {
    LayerInterface::builder("ctr-leaky")
        .prim(PrimSpec::atomic("bump", |ctx, _| {
            let n = ctx.abs.get_or_undef("n").as_int().unwrap_or(0) + 1;
            ctx.abs.set("n", Val::Int(n));
            ctx.emit(EventKind::Prim("bump".into(), vec![]));
            let leak = ctx
                .log
                .iter()
                .any(|e| matches!(e.kind, EventKind::Push(l, _) if l == LEAK_LOC));
            Ok(Val::Int(if leak { n + 1 } else { n }))
        }))
        .build()
}

/// The specification: `bump` returns the count of its own `bump` events,
/// replayed from the log.
pub fn env_leaky_counter_spec() -> LayerInterface {
    LayerInterface::builder("ctr-spec")
        .prim(PrimSpec::atomic("bump", |ctx, _| {
            ctx.emit(EventKind::Prim("bump".into(), vec![]));
            let n = ctx
                .log
                .iter()
                .filter(|e| {
                    e.pid == ctx.pid && matches!(&e.kind, EventKind::Prim(p, _) if p == "bump")
                })
                .count();
            Ok(Val::Int(n as i64))
        }))
        .build()
}

/// The op scripts checked against the spec.
pub fn env_leaky_counter_scripts() -> Vec<Vec<(String, Vec<Val>)>> {
    vec![vec![("bump".to_owned(), vec![]); 2]]
}

/// The context family: one scratch player feeding [`LEAK_LOC`]. Schedules
/// that never reach `p1` pass; the rest leak.
pub fn env_leaky_counter_contexts() -> Vec<EnvContext> {
    ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), std::sync::Arc::new(ScratchPlayer::new(Pid(1), LEAK_LOC)))
        .with_schedule_len(3)
        .with_por(true)
        .contexts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_core::id::PidSet;
    use ccal_core::sim::{check_prim_refinement, SimOptions, SimRelation};
    use ccal_verifier::{
        check_linearizability_tuned, check_liveness_tuned, check_race_freedom_tuned,
        check_sequence_refinement_tuned, fifo_history_validator,
    };

    #[test]
    fn scratch_sensitive_fails_refinement() {
        let err = check_prim_refinement(
            &scratch_sensitive_lower(),
            "op",
            &scratch_sensitive_upper(),
            "op",
            &SimRelation::identity(),
            Pid(0),
            &scratch_sensitive_contexts(),
            &[vec![]],
            &SimOptions::default().with_workers(1).with_por(false),
        )
        .unwrap_err();
        assert!(err.reason.contains("return values differ"), "{}", err.reason);
    }

    #[test]
    fn impatient_waiter_fails_liveness() {
        let err = check_liveness_tuned(
            &impatient_waiter_iface(),
            "wait",
            &[],
            Pid(0),
            &impatient_waiter_contexts(),
            IMPATIENT_BOUND,
            IMPATIENT_FUEL,
            1,
            false,
            true,
            true,
        )
        .unwrap_err();
        assert!(matches!(err, ccal_core::calculus::LayerError::Mismatch { .. }));
    }

    #[test]
    fn unlocked_pair_races() {
        let err = check_race_freedom_tuned(
            &ccal_machine::mx86::mx86_hw_interface(),
            &PidSet::from_pids([Pid(0), Pid(1)]),
            &unlocked_pair_programs(),
            &unlocked_pair_contexts(),
            50_000,
            1,
            false,
            true,
            true,
        )
        .unwrap_err();
        assert!(matches!(err, ccal_core::calculus::LayerError::Mismatch { .. }));
    }

    #[test]
    fn lifo_queue_fails_linearizability() {
        let err = check_linearizability_tuned(
            &lifo_queue_iface(),
            &PidSet::from_pids([Pid(0), Pid(1)]),
            &lifo_queue_programs(),
            &SimRelation::identity(),
            &*fifo_history_validator("deq"),
            &lifo_queue_contexts(),
            100_000,
            1,
            false,
            true,
            true,
        )
        .unwrap_err();
        assert!(matches!(err, ccal_core::calculus::LayerError::Mismatch { .. }));
    }

    #[test]
    fn env_leaky_counter_fails_sequence_refinement() {
        let err = check_sequence_refinement_tuned(
            &env_leaky_counter_impl(),
            &env_leaky_counter_spec(),
            &SimRelation::identity(),
            Pid(0),
            &env_leaky_counter_contexts(),
            &env_leaky_counter_scripts(),
            100_000,
            1,
            false,
            true,
            true,
        )
        .unwrap_err();
        assert!(matches!(err, ccal_core::calculus::LayerError::Mismatch { .. }));
    }

    #[test]
    fn lifo_replay_pops_newest() {
        use ccal_core::event::Event;
        let log = Log::from_events([
            Event::new(Pid(0), EventKind::EnQ(QId(0), Val::Int(10))),
            Event::new(Pid(1), EventKind::EnQ(QId(0), Val::Int(20))),
            Event::new(Pid(0), EventKind::DeQ(QId(0))),
        ]);
        assert_eq!(lifo_deq_result(&log, 2), Val::Int(20));
    }
}
