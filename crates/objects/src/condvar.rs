//! Condition variables over the queuing lock (one of the "high-level
//! synchronization libraries such as queuing locks, condition variables
//! (CV), and message-passing primitives" of §1, Fig. 1).
//!
//! Mesa-style: `cv_wait(cv, l)` registers the caller on the condition
//! queue, releases the queuing lock `l`, blocks until signalled, and
//! re-acquires `l`; `cv_signal` wakes the FIFO front waiter,
//! `cv_broadcast` wakes all. The implementation runs over the *atomic*
//! queuing-lock interface — another instance of §6's observation that
//! building on certified lock layers "is relatively simple and does not
//! require many lines of code".

use ccal_core::calculus::{check_fun, CertifiedLayer, CheckOptions, LayerError};
use ccal_core::event::{Event, EventKind};
use ccal_core::id::{Loc, Pid, QId};
use ccal_core::layer::{LayerInterface, PrimCtx, PrimRun, PrimSpec, PrimStep};
use ccal_core::log::Log;
use ccal_core::machine::MachineError;
use ccal_core::replay::replay_atomic_lock;
use ccal_core::sim::SimRelation;
use ccal_core::strategy::{Strategy, StrategyMove};
use ccal_core::val::Val;

use crate::qlock::qlock_overlay;
use crate::ticket::holds_atomic_lock;

/// The ClightX source of the condition-variable module.
pub const CONDVAR_SOURCE: &str = r#"
void cv_wait(int cv, int l) {
    cv_enq(cv);
    rel_q(l);
    cv_block(cv);
    acq_q(l);
}
void cv_signal(int cv) {
    cv_sig(cv);
}
void cv_broadcast(int cv) {
    cv_bcast(cv);
}
"#;

/// The threads currently waiting on condition variable `cv` (FIFO),
/// replayed from the CV events: `CvWait` registers, `CvSignal` pops one,
/// `CvBroadcast` pops all.
pub fn replay_cv_waiters(log: &Log, cv: QId) -> Vec<Pid> {
    let mut waiters = Vec::new();
    for e in log.iter() {
        match e.kind {
            EventKind::CvWait(q) if q == cv => waiters.push(e.pid),
            EventKind::CvSignal(q) if q == cv && !waiters.is_empty() => {
                waiters.remove(0);
            }
            EventKind::CvBroadcast(q) if q == cv => waiters.clear(),
            _ => {}
        }
    }
    waiters
}

fn arg_loc(args: &[Val], i: usize) -> Result<Loc, MachineError> {
    args.get(i)
        .ok_or_else(|| MachineError::Stuck(format!("missing location argument {i}")))?
        .as_loc()
        .map_err(MachineError::from)
}

#[derive(Clone)]
struct CvBlock {
    cv: QId,
}

impl PrimRun for CvBlock {
    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        Some(Box::new(self.clone()))
    }

    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        if replay_cv_waiters(ctx.log, self.cv).contains(&ctx.pid) {
            Ok(PrimStep::Query)
        } else {
            Ok(PrimStep::Done(Val::Unit))
        }
    }
}

/// The CV underlay: the atomic queuing lock plus the raw CV primitives
/// (`cv_enq`/`cv_block`/`cv_sig`/`cv_bcast`).
pub fn condvar_underlay() -> LayerInterface {
    let base = qlock_overlay();
    let mut b = LayerInterface::builder("Lcvb");
    for name in base.prim_names() {
        b = b.prim(base.prim(name).expect("listed").clone());
    }
    b.prim(PrimSpec::atomic_unqueried("cv_enq", |ctx, args| {
        let cv = arg_loc(args, 0)?;
        ctx.emit(EventKind::CvWait(QId(cv.0)));
        Ok(Val::Unit)
    }))
    .prim(PrimSpec::strategy("cv_block", true, |_pid, args| {
        let cv = args
            .first()
            .and_then(|v| v.as_loc().ok())
            .map(|l| QId(l.0))
            .unwrap_or(QId(0));
        Box::new(CvBlock { cv })
    }))
    .prim(PrimSpec::atomic("cv_sig", |ctx, args| {
        let cv = arg_loc(args, 0)?;
        ctx.emit(EventKind::CvSignal(QId(cv.0)));
        Ok(Val::Unit)
    }))
    .prim(PrimSpec::atomic("cv_bcast", |ctx, args| {
        let cv = arg_loc(args, 0)?;
        ctx.emit(EventKind::CvBroadcast(QId(cv.0)));
        Ok(Val::Unit)
    }))
    .critical(holds_atomic_lock)
    .build()
}

/// The specification strategy of `cv_wait`: register + release in one
/// step, block until signalled, then re-acquire the queuing lock.
#[derive(Clone)]
struct PhiCvWait {
    args: Vec<Val>,
    phase: u8,
}

impl PrimRun for PhiCvWait {
    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        Some(Box::new(self.clone()))
    }

    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        let cv = QId(arg_loc(&self.args, 0)?.0);
        let l = arg_loc(&self.args, 1)?;
        match self.phase {
            0 => {
                ctx.emit(EventKind::CvWait(cv));
                ctx.emit(EventKind::RelQ(l));
                self.phase = 1;
                Ok(PrimStep::Query)
            }
            1 => {
                if replay_cv_waiters(ctx.log, cv).contains(&ctx.pid) {
                    return Ok(PrimStep::Query);
                }
                self.phase = 2;
                self.resume(ctx)
            }
            _ => {
                // Re-acquire (possibly via handoff, as in the qlock spec).
                if replay_atomic_lock(ctx.log, l)? == Some(ctx.pid) {
                    return Ok(PrimStep::Done(Val::Unit));
                }
                if replay_atomic_lock(ctx.log, l)?.is_none() {
                    ctx.emit(EventKind::AcqQ(l));
                    Ok(PrimStep::Done(Val::Unit))
                } else {
                    Ok(PrimStep::Query)
                }
            }
        }
    }
}

/// The CV overlay: `cv_wait` as the canonical wait strategy; signal and
/// broadcast as single events. The queuing lock is re-exported (Fig. 1's
/// synchronization libraries expose both).
pub fn condvar_overlay() -> LayerInterface {
    let qlock = qlock_overlay();
    let mut b = LayerInterface::builder("Lcv");
    for name in ["acq_q", "rel_q"] {
        b = b.prim(qlock.prim(name).expect("qlock prim").clone());
    }
    b
        .prim(PrimSpec::strategy("cv_wait", true, |_pid, args| {
            Box::new(PhiCvWait { args, phase: 0 })
        }))
        .prim(PrimSpec::atomic("cv_signal", |ctx, args| {
            let cv = arg_loc(args, 0)?;
            ctx.emit(EventKind::CvSignal(QId(cv.0)));
            Ok(Val::Unit)
        }))
        .prim(PrimSpec::atomic("cv_broadcast", |ctx, args| {
            let cv = arg_loc(args, 0)?;
            ctx.emit(EventKind::CvBroadcast(QId(cv.0)));
            Ok(Val::Unit)
        }))
        .critical(holds_atomic_lock)
        .build()
}

/// An environment thread that signals waiters; between signals it takes
/// and releases the queuing lock like any client.
#[derive(Debug, Clone)]
pub struct CvEnvPlayer {
    pid: Pid,
    cv: QId,
    l: Loc,
}

impl CvEnvPlayer {
    /// Creates a signaller for condition variable `cv` guarded by qlock
    /// `l`.
    pub fn new(pid: Pid, cv: QId, l: Loc) -> Self {
        Self { pid, cv, l }
    }
}

impl Strategy for CvEnvPlayer {
    fn next_move(&self, log: &Log) -> StrategyMove {
        // If we hold the qlock, release it so waiters can re-acquire.
        if replay_atomic_lock(log, self.l) == Ok(Some(self.pid)) {
            return StrategyMove::Emit(vec![Event::new(self.pid, EventKind::RelQ(self.l))]);
        }
        if !replay_cv_waiters(log, self.cv).is_empty() {
            return StrategyMove::Emit(vec![Event::new(
                self.pid,
                EventKind::CvSignal(self.cv),
            )]);
        }
        StrategyMove::idle()
    }

    fn may_emit(&self) -> Option<Vec<EventKind>> {
        Some(vec![
            EventKind::RelQ(self.l),
            EventKind::CvSignal(self.cv),
        ])
    }

    fn name(&self) -> &str {
        "cv-signaller"
    }
}

/// Certifies the condition-variable module:
/// `Lcvb[t] ⊢_id Mcv : Lcv[t]` — the implementation's event footprint *is*
/// the specification's (the underlay is already atomic), so the relation
/// is the identity.
///
/// # Errors
///
/// The first failed obligation.
pub fn certify_condvar(
    pid: Pid,
    cv: QId,
    l: Loc,
    contexts: Vec<ccal_core::env::EnvContext>,
) -> Result<CertifiedLayer, LayerError> {
    let m = ccal_clightx::clightx_module("Mcv", CONDVAR_SOURCE).map_err(|e| {
        LayerError::Machine(MachineError::Stuck(format!("Mcv front-end: {e}")))
    })?;
    let opts = CheckOptions::new(contexts)
        .with_workload("cv_wait", vec![vec![Val::Loc(Loc(cv.0)), Val::Loc(l)]])
        .with_setup("cv_wait", vec![("acq_q".to_owned(), vec![Val::Loc(l)])])
        .with_workload("cv_signal", vec![vec![Val::Loc(Loc(cv.0))]])
        .with_workload("cv_broadcast", vec![vec![Val::Loc(Loc(cv.0))]])
        .with_workload("acq_q", vec![vec![Val::Loc(l)]])
        .with_workload("rel_q", vec![vec![Val::Loc(l)]])
        .with_setup("rel_q", vec![("acq_q".to_owned(), vec![Val::Loc(l)])]);
    check_fun(
        &condvar_underlay(),
        &m,
        &condvar_overlay(),
        &SimRelation::identity(),
        pid,
        &opts,
    )
}

#[cfg(test)]
#[allow(clippy::cloned_ref_to_slice_refs)]
mod tests {
    use super::*;
    use ccal_core::contexts::ContextGen;
    use std::sync::Arc;

    #[test]
    fn waiters_replay_with_signal_and_broadcast() {
        let cv = QId(8);
        let log = Log::from_events([
            Event::new(Pid(0), EventKind::CvWait(cv)),
            Event::new(Pid(1), EventKind::CvWait(cv)),
            Event::new(Pid(2), EventKind::CvSignal(cv)),
        ]);
        assert_eq!(replay_cv_waiters(&log, cv), vec![Pid(1)]);
        let mut log = log;
        log.append(Event::new(Pid(2), EventKind::CvBroadcast(cv)));
        assert!(replay_cv_waiters(&log, cv).is_empty());
    }

    #[test]
    fn condvar_certifies() {
        let cv = QId(8);
        let l = Loc(4);
        let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
            .with_player(Pid(1), Arc::new(CvEnvPlayer::new(Pid(1), cv, l)))
            .with_schedule_len(3)
            .contexts();
        let layer = certify_condvar(Pid(0), cv, l, contexts).unwrap();
        assert!(layer.certificate.total_cases() > 0);
    }

    #[test]
    fn wait_blocks_until_signalled_then_reacquires() {
        use ccal_core::env::EnvContext;
        use ccal_core::machine::LayerMachine;
        let cv = QId(8);
        let l = Loc(4);
        let m = ccal_clightx::clightx_module("Mcv", CONDVAR_SOURCE).unwrap();
        let iface = m.install(&condvar_underlay()).unwrap();
        let env = EnvContext::new(Arc::new(
            ccal_core::strategy::RoundRobinScheduler::over_domain(2),
        ))
        .with_player(Pid(1), Arc::new(CvEnvPlayer::new(Pid(1), cv, l)));
        let mut machine = LayerMachine::new(iface, Pid(0), env);
        machine.call_prim("acq_q", &[Val::Loc(l)]).unwrap();
        machine
            .call_prim("cv_wait", &[Val::Loc(Loc(cv.0)), Val::Loc(l)])
            .unwrap();
        // After waking we hold the lock again.
        assert_eq!(replay_atomic_lock(&machine.log, l), Ok(Some(Pid(0))));
    }
}
