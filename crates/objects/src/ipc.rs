//! Inter-process communication over the queuing lock and condition
//! variables.
//!
//! The top of Fig. 1's synchronization-library layer: CertiKOS builds "a
//! synchronous inter-process communication (IPC) protocol using the
//! queuing lock" (§6). A channel is a mailbox protected by the queuing
//! lock at the channel's location, with a condition variable (same id)
//! signalling "not empty"; `recv` blocks Mesa-style until a message
//! arrives. The atomic overlay exposes single-event `send`/`recv` whose
//! results come from the replayed channel contents.

use ccal_core::calculus::{check_fun, CertifiedLayer, CheckOptions, LayerError};
use ccal_core::event::{Event, EventKind};
use ccal_core::id::{Loc, Pid, QId};
use ccal_core::layer::{LayerInterface, PrimCtx, PrimRun, PrimSpec, PrimStep};
use ccal_core::log::Log;
use ccal_core::machine::MachineError;
use ccal_core::replay::replay_atomic_lock;
use ccal_core::sim::SimRelation;
use ccal_core::strategy::{Strategy, StrategyMove};
use ccal_core::val::Val;

use crate::condvar::condvar_overlay;
use crate::ticket::holds_atomic_lock;

/// The ClightX source of the IPC module.
pub const IPC_SOURCE: &str = r#"
void send(int ch, int v) {
    acq_q(ch);
    ipc_put(ch, v);
    cv_signal(ch);
    rel_q(ch);
}
int recv(int ch) {
    acq_q(ch);
    while (ch_size(ch) == 0) {
        cv_wait(ch, ch);
    }
    int v = ipc_get(ch);
    rel_q(ch);
    return v;
}
"#;

/// The replayed contents of channel `ch` (oldest message first).
pub fn replay_channel(log: &Log, ch: QId) -> Vec<Val> {
    let mut buf = Vec::new();
    for e in log.iter() {
        match &e.kind {
            EventKind::IpcSend(q, v) if *q == ch => buf.push(v.clone()),
            EventKind::IpcRecv(q) if *q == ch && !buf.is_empty() => {
                buf.remove(0);
            }
            _ => {}
        }
    }
    buf
}

fn arg_loc(args: &[Val]) -> Result<Loc, MachineError> {
    args.first()
        .ok_or_else(|| MachineError::Stuck("ipc primitive needs a channel".into()))?
        .as_loc()
        .map_err(MachineError::from)
}

fn require_qlock(ctx: &PrimCtx<'_>, ch: Loc) -> Result<(), MachineError> {
    if replay_atomic_lock(ctx.log, ch)? == Some(ctx.pid) {
        Ok(())
    } else {
        Err(MachineError::Stuck(format!(
            "ipc op on channel {ch} by {} without the channel lock",
            ctx.pid
        )))
    }
}

/// The IPC underlay: the CV/qlock interface plus the raw mailbox
/// accessors, all requiring the channel lock.
pub fn ipc_underlay() -> LayerInterface {
    let base = condvar_overlay();
    let mut b = LayerInterface::builder("Lipcb");
    for name in base.prim_names() {
        b = b.prim(base.prim(name).expect("listed").clone());
    }
    b.prim(PrimSpec::atomic_unqueried("ipc_put", |ctx, args| {
        let ch = arg_loc(args)?;
        require_qlock(ctx, ch)?;
        let v = args
            .get(1)
            .cloned()
            .ok_or_else(|| MachineError::Stuck("ipc_put needs a value".into()))?;
        ctx.emit(EventKind::IpcSend(QId(ch.0), v));
        Ok(Val::Unit)
    }))
    .prim(PrimSpec::atomic_unqueried("ipc_get", |ctx, args| {
        let ch = arg_loc(args)?;
        require_qlock(ctx, ch)?;
        let front = replay_channel(ctx.log, QId(ch.0)).into_iter().next();
        let front = front.ok_or_else(|| {
            MachineError::Stuck(format!("ipc_get on empty channel {ch}"))
        })?;
        ctx.emit(EventKind::IpcRecv(QId(ch.0)));
        Ok(front)
    }))
    .prim(PrimSpec::private("ch_size", |ctx, args| {
        let ch = arg_loc(args)?;
        require_qlock(ctx, ch)?;
        Ok(Val::Int(replay_channel(ctx.log, QId(ch.0)).len() as i64))
    }))
    .critical(holds_atomic_lock)
    .build()
}

/// The atomic `recv` strategy: wait until the channel has a message, then
/// take it in a single event.
#[derive(Clone)]
struct PhiRecv {
    args: Vec<Val>,
    queried: bool,
}

impl PrimRun for PhiRecv {
    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        Some(Box::new(self.clone()))
    }

    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        let ch = QId(arg_loc(&self.args)?.0);
        if !self.queried {
            self.queried = true;
            return Ok(PrimStep::Query);
        }
        match replay_channel(ctx.log, ch).into_iter().next() {
            Some(front) => {
                ctx.emit(EventKind::IpcRecv(ch));
                Ok(PrimStep::Done(front))
            }
            None => Ok(PrimStep::Query),
        }
    }
}

/// The atomic IPC overlay: single-event `send`/`recv`.
pub fn ipc_overlay() -> LayerInterface {
    LayerInterface::builder("Lipc")
        .prim(PrimSpec::atomic("send", |ctx, args| {
            let ch = arg_loc(args)?;
            let v = args
                .get(1)
                .cloned()
                .ok_or_else(|| MachineError::Stuck("send needs a value".into()))?;
            ctx.emit(EventKind::IpcSend(QId(ch.0), v));
            Ok(Val::Unit)
        }))
        .prim(PrimSpec::strategy("recv", true, |_pid, args| {
            Box::new(PhiRecv {
                args,
                queried: false,
            })
        }))
        .build()
}

/// `R_ipc`: the lock and condition-variable events are erased; only the
/// message events remain.
pub fn r_ipc_relation() -> SimRelation {
    SimRelation::per_event("Ripc", |e| match e.kind {
        EventKind::AcqQ(_)
        | EventKind::RelQ(_)
        | EventKind::CvWait(_)
        | EventKind::CvSignal(_)
        | EventKind::CvBroadcast(_) => vec![],
        _ => vec![e.clone()],
    })
}

/// An environment thread that feeds the channel: when the channel is
/// empty and the lock free, performs a whole send burst (the exact event
/// shape the implementation produces).
#[derive(Debug, Clone)]
pub struct SenderEnvPlayer {
    pid: Pid,
    ch: Loc,
    rounds: u64,
}

impl SenderEnvPlayer {
    /// Creates a sender feeding channel `ch`.
    pub fn new(pid: Pid, ch: Loc, rounds: u64) -> Self {
        Self { pid, ch, rounds }
    }
}

impl Strategy for SenderEnvPlayer {
    fn next_move(&self, log: &Log) -> StrategyMove {
        let sent = log
            .iter()
            .filter(|e| {
                e.pid == self.pid && matches!(e.kind, EventKind::IpcSend(q, _) if q.0 == self.ch.0)
            })
            .count() as u64;
        if sent >= self.rounds || replay_atomic_lock(log, self.ch) != Ok(None) {
            return StrategyMove::idle();
        }
        StrategyMove::Emit(vec![
            Event::new(self.pid, EventKind::AcqQ(self.ch)),
            Event::new(
                self.pid,
                EventKind::IpcSend(QId(self.ch.0), Val::Int(500 + sent as i64)),
            ),
            Event::new(self.pid, EventKind::CvSignal(QId(self.ch.0))),
            Event::new(self.pid, EventKind::RelQ(self.ch)),
        ])
    }

    fn may_emit(&self) -> Option<Vec<EventKind>> {
        Some(vec![
            EventKind::AcqQ(self.ch),
            EventKind::IpcSend(QId(self.ch.0), Val::Int(0)),
            EventKind::CvSignal(QId(self.ch.0)),
            EventKind::RelQ(self.ch),
        ])
    }

    fn name(&self) -> &str {
        "ipc-sender"
    }
}

/// Certifies the IPC module: `Lipcb[t] ⊢_{Ripc} Mipc : Lipc[t]`.
///
/// # Errors
///
/// The first failed obligation.
pub fn certify_ipc(
    pid: Pid,
    ch: Loc,
    contexts: Vec<ccal_core::env::EnvContext>,
) -> Result<CertifiedLayer, LayerError> {
    let m = ccal_clightx::clightx_module("Mipc", IPC_SOURCE).map_err(|e| {
        LayerError::Machine(MachineError::Stuck(format!("Mipc front-end: {e}")))
    })?;
    let opts = CheckOptions::new(contexts)
        .with_workload("send", vec![vec![Val::Loc(ch), Val::Int(7)]])
        .with_workload("recv", vec![vec![Val::Loc(ch)]]);
    check_fun(&ipc_underlay(), &m, &ipc_overlay(), &r_ipc_relation(), pid, &opts)
}

#[cfg(test)]
#[allow(clippy::cloned_ref_to_slice_refs)]
mod tests {
    use super::*;
    use ccal_core::contexts::ContextGen;
    use std::sync::Arc;

    fn contexts(ch: Loc) -> Vec<ccal_core::env::EnvContext> {
        ContextGen::new(vec![Pid(0), Pid(1)])
            .with_player(Pid(1), Arc::new(SenderEnvPlayer::new(Pid(1), ch, 2)))
            .with_schedule_len(3)
            .contexts()
    }

    #[test]
    fn channel_replay_is_fifo() {
        let ch = QId(6);
        let log = Log::from_events([
            Event::new(Pid(0), EventKind::IpcSend(ch, Val::Int(1))),
            Event::new(Pid(0), EventKind::IpcSend(ch, Val::Int(2))),
            Event::new(Pid(1), EventKind::IpcRecv(ch)),
        ]);
        assert_eq!(replay_channel(&log, ch), vec![Val::Int(2)]);
    }

    #[test]
    fn ipc_certifies() {
        let ch = Loc(6);
        let layer = certify_ipc(Pid(0), ch, contexts(ch)).unwrap();
        assert!(layer.certificate.total_cases() > 0);
        assert_eq!(layer.relation.name(), "Ripc");
    }

    #[test]
    fn recv_blocks_until_a_message_arrives() {
        use ccal_core::machine::LayerMachine;
        let ch = Loc(6);
        let m = ccal_clightx::clightx_module("Mipc", IPC_SOURCE).unwrap();
        let iface = m.install(&ipc_underlay()).unwrap();
        let env = ccal_core::env::EnvContext::new(Arc::new(
            ccal_core::strategy::RoundRobinScheduler::over_domain(2),
        ))
        .with_player(Pid(1), Arc::new(SenderEnvPlayer::new(Pid(1), ch, 1)));
        let mut machine = LayerMachine::new(iface, Pid(0), env);
        let got = machine.call_prim("recv", &[Val::Loc(ch)]).unwrap();
        assert_eq!(got, Val::Int(500));
    }

    #[test]
    fn mailbox_ops_require_the_channel_lock() {
        use ccal_core::machine::LayerMachine;
        let env = ccal_core::env::EnvContext::new(Arc::new(
            ccal_core::strategy::RoundRobinScheduler::over_domain(1),
        ));
        let mut m = LayerMachine::new(ipc_underlay(), Pid(0), env);
        assert!(matches!(
            m.call_prim("ipc_put", &[Val::Loc(Loc(6)), Val::Int(1)]),
            Err(MachineError::Stuck(_))
        ));
    }
}
