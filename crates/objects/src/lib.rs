//! # ccal-objects — the certified concurrent objects
//!
//! The object stacks of §4–§5 and Table 2 of *"Certified Concurrent
//! Abstraction Layers"*, each built with the layer calculus and certified
//! by the bounded simulation checker:
//!
//! * [`ticket`] — the ticket lock of Figs. 3/10, through the complete
//!   Fig. 5 pipeline: fun-lift (`φ′_acq`/`φ′_rel`), log-lift to the
//!   atomic `acq`/`rel` interface via `R1`, and the `foo` client layer
//!   via `R2`;
//! * [`mcs`] — the MCS queue lock (Kim et al. \[24\]), certified against
//!   the *same* atomic interface, so the two locks are interchangeable
//!   (§6);
//! * [`localq`] — the sequential doubly-linked-list queue refined to a
//!   logical list (Table 2's *Local queue*);
//! * [`sharedq`] — the lock-wrapped atomic shared queue (§4.2);
//! * [`sched`] — `yield`/`sleep`/`wakeup` over shared thread queues with
//!   an assembly `cswitch` (§5.1), the thread-local interface (§5.3), and
//!   the executable Theorem 5.1;
//! * [`qlock`] — the queuing lock of Fig. 11 (§5.4), whose waiters sleep
//!   instead of spinning;
//! * [`condvar`] — Mesa-style condition variables over the queuing lock;
//! * [`ipc`] — synchronous message passing at the top of the Fig. 1
//!   tower;
//! * [`buggy`] — intentionally defective fixtures that seed the
//!   failure-forensics pipeline (`ccal-forensics`) with reproducible
//!   counterexamples.
//!
//! Each module exports its layer interfaces, its ClightX (and assembly)
//! sources, its replay functions and simulation relations, well-behaved
//! environment players for checking, and a `certify_*` entry point that
//! discharges the full obligation set.

#![warn(missing_docs)]

pub mod buggy;
pub mod condvar;
pub mod ipc;
pub mod localq;
pub mod mcs;
pub mod qlock;
pub mod sched;
pub mod sharedq;
pub mod ticket;
