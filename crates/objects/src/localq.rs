//! The local (sequential) queue: a doubly linked list refined to a
//! logical list.
//!
//! "The queue is represented as a logical list in the specification, while
//! it is implemented as a doubly linked list" (§6, Table 2's *Local
//! queue*). The implementation manipulates a node pool through private
//! (silent, §3.1) layer primitives; the specification keeps a `Val::List`
//! in the abstract state — precisely the paper's `a.tdqp` logical queues
//! (§4.2). Since no events are involved, refinement is checked on whole
//! operation scripts ([`ccal_verifier::check_sequence_refinement`]),
//! comparing every returned value.

use ccal_core::abs::AbsState;
use ccal_core::layer::{LayerInterface, PrimSpec};
use ccal_core::machine::MachineError;
use ccal_core::val::Val;

/// The ClightX source of the doubly-linked-list queue (`-1` is the null
/// node).
pub const LOCALQ_SOURCE: &str = r#"
void enq_t(int q, int v) {
    int i = node_alloc();
    nd_set_val(i, v);
    nd_set_next(i, -1);
    int t = q_tail(q);
    nd_set_prev(i, t);
    if (t == -1) { q_set_head(q, i); } else { nd_set_next(t, i); }
    q_set_tail(q, i);
}
int deq_t(int q) {
    int h = q_head(q);
    if (h == -1) { return -1; }
    int n = nd_get_next(h);
    q_set_head(q, n);
    if (n == -1) { q_set_tail(q, -1); } else { nd_set_prev(n, -1); }
    return nd_get_val(h);
}
"#;

fn int_arg(args: &[Val], i: usize) -> Result<i64, MachineError> {
    args.get(i)
        .ok_or_else(|| MachineError::Stuck(format!("missing integer argument {i}")))?
        .as_int()
        .map_err(MachineError::from)
}

fn int_field(abs: &AbsState, key: &str, default: i64) -> i64 {
    match abs.get_or_undef(key) {
        Val::Int(i) => i,
        _ => default,
    }
}

/// The node-pool underlay: private accessors over the abstract state for
/// node next/prev/value links and per-queue head/tail indices. These are
/// the lower-layer structure accessors the paper's queue module is built
/// on (§4.2's `tcb`/`tdq` arrays).
pub fn node_pool_interface() -> LayerInterface {
    fn getter(name: &'static str, key: fn(i64) -> String) -> PrimSpec {
        PrimSpec::private(name, move |ctx, args| {
            let i = int_arg(args, 0)?;
            Ok(Val::Int(int_field(ctx.abs, &key(i), -1)))
        })
    }
    fn setter(name: &'static str, key: fn(i64) -> String) -> PrimSpec {
        PrimSpec::private(name, move |ctx, args| {
            let i = int_arg(args, 0)?;
            let v = int_arg(args, 1)?;
            ctx.abs.set(&key(i), Val::Int(v));
            Ok(Val::Unit)
        })
    }
    LayerInterface::builder("Lnode")
        .prim(PrimSpec::private("node_alloc", |ctx, _| {
            let n = int_field(ctx.abs, "nd_count", 0);
            ctx.abs.set("nd_count", Val::Int(n + 1));
            Ok(Val::Int(n))
        }))
        .prim(getter("nd_get_next", |i| format!("nd_next[{i}]")))
        .prim(setter("nd_set_next", |i| format!("nd_next[{i}]")))
        .prim(getter("nd_get_prev", |i| format!("nd_prev[{i}]")))
        .prim(setter("nd_set_prev", |i| format!("nd_prev[{i}]")))
        .prim(getter("nd_get_val", |i| format!("nd_val[{i}]")))
        .prim(setter("nd_set_val", |i| format!("nd_val[{i}]")))
        .prim(getter("q_head", |q| format!("q_head[{q}]")))
        .prim(setter("q_set_head", |q| format!("q_head[{q}]")))
        .prim(getter("q_tail", |q| format!("q_tail[{q}]")))
        .prim(setter("q_set_tail", |q| format!("q_tail[{q}]")))
        .build()
}

/// The logical-list specification interface: `enq_t`/`deq_t` over a
/// `Val::List` abstract field — the `σ_deQ_t` of §4.2 without the
/// ownership side conditions (this is the *local* queue; the shared
/// wrapper adds the lock discipline).
pub fn logical_queue_interface() -> LayerInterface {
    LayerInterface::builder("LqSpec")
        .prim(PrimSpec::private("enq_t", |ctx, args| {
            let q = int_arg(args, 0)?;
            let v = args
                .get(1)
                .cloned()
                .ok_or_else(|| MachineError::Stuck("enq_t needs a value".into()))?;
            let key = format!("lq[{q}]");
            let mut items = match ctx.abs.get_or_undef(&key) {
                Val::List(items) => items,
                _ => Vec::new(),
            };
            items.push(v);
            ctx.abs.set(&key, Val::List(items));
            Ok(Val::Unit)
        }))
        .prim(PrimSpec::private("deq_t", |ctx, args| {
            let q = int_arg(args, 0)?;
            let key = format!("lq[{q}]");
            let mut items = match ctx.abs.get_or_undef(&key) {
                Val::List(items) => items,
                _ => Vec::new(),
            };
            if items.is_empty() {
                return Ok(Val::Int(-1));
            }
            let front = items.remove(0);
            ctx.abs.set(&key, Val::List(items));
            Ok(front)
        }))
        .build()
}

/// The local queue implementation installed over the node pool, as a layer
/// interface ready for refinement checking.
///
/// # Errors
///
/// Front-end or linking errors from the embedded source.
pub fn localq_impl_interface() -> Result<LayerInterface, MachineError> {
    let m = ccal_clightx::clightx_module("Mlq", LOCALQ_SOURCE)
        .map_err(|e| MachineError::Stuck(format!("Mlq front-end: {e}")))?;
    m.install(&node_pool_interface())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_core::contexts::ContextGen;
    use ccal_core::id::Pid;
    use ccal_core::sim::SimRelation;
    use ccal_verifier::check_sequence_refinement;

    fn scripts() -> Vec<ccal_verifier::OpScript> {
        let e = |q: i64, v: i64| ("enq_t".to_owned(), vec![Val::Int(q), Val::Int(v)]);
        let d = |q: i64| ("deq_t".to_owned(), vec![Val::Int(q)]);
        vec![
            vec![d(0)],                                      // deq from empty
            vec![e(0, 1), d(0), d(0)],                       // drain past empty
            vec![e(0, 1), e(0, 2), e(0, 3), d(0), d(0), d(0)], // FIFO order
            vec![e(0, 1), d(0), e(0, 2), e(0, 3), d(0), d(0)], // interleaved
            vec![e(0, 1), e(1, 9), d(1), d(0)],              // two queues
            vec![e(0, 1), e(0, 2), d(0), e(0, 3), d(0), d(0), d(0)],
        ]
    }

    #[test]
    fn dll_refines_logical_list_on_scripts() {
        let contexts = vec![ContextGen::new(vec![Pid(0)]).round_robin()];
        let ob = check_sequence_refinement(
            &localq_impl_interface().unwrap(),
            &logical_queue_interface(),
            &SimRelation::identity(),
            Pid(0),
            &contexts,
            &scripts(),
            200_000,
        )
        .unwrap();
        assert_eq!(ob.cases_checked, scripts().len());
    }

    #[test]
    fn dll_maintains_prev_links() {
        use ccal_core::env::EnvContext;
        use ccal_core::machine::LayerMachine;
        use ccal_core::strategy::RoundRobinScheduler;
        use std::sync::Arc;
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(1)));
        let mut m = LayerMachine::new(localq_impl_interface().unwrap(), Pid(0), env);
        for v in 1..=3 {
            m.call_prim("enq_t", &[Val::Int(0), Val::Int(v)]).unwrap();
        }
        // Node 1 (middle) has prev = 0 and next = 2.
        assert_eq!(m.abs.get_or_undef("nd_prev[1]"), Val::Int(0));
        assert_eq!(m.abs.get_or_undef("nd_next[1]"), Val::Int(2));
        // Dequeue the head; the new head's prev is cleared.
        assert_eq!(m.call_prim("deq_t", &[Val::Int(0)]).unwrap(), Val::Int(1));
        assert_eq!(m.abs.get_or_undef("nd_prev[1]"), Val::Int(-1));
    }

    proptest::proptest! {
        /// Random op scripts: the DLL implementation and the logical list
        /// agree on every returned value.
        #[test]
        fn random_scripts_agree(ops in proptest::collection::vec((0_i64..2, 0_i64..2, 1_i64..50), 0..14)) {
            let script: ccal_verifier::OpScript = ops
                .into_iter()
                .map(|(kind, q, v)| {
                    if kind == 0 {
                        ("enq_t".to_owned(), vec![Val::Int(q), Val::Int(v)])
                    } else {
                        ("deq_t".to_owned(), vec![Val::Int(q)])
                    }
                })
                .collect();
            let contexts = vec![ContextGen::new(vec![Pid(0)]).round_robin()];
            check_sequence_refinement(
                &localq_impl_interface().unwrap(),
                &logical_queue_interface(),
                &SimRelation::identity(),
                Pid(0),
                &contexts,
                &[script],
                200_000,
            )
            .unwrap();
        }
    }
}
