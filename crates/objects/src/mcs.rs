//! The MCS queue lock, certified against the *same* atomic interface as
//! the ticket lock.
//!
//! "Both ticket and MCS locks share the same high-level atomic
//! specifications (or strategies) shown in Sec. 2. Thus the lock
//! implementations can be freely interchanged without affecting any proof
//! in the higher-level modules using locks" (§6; the MCS verification is
//! the subject of Kim et al. \[24\]).
//!
//! The lock queues waiters through per-participant nodes: `mcs_swap`
//! atomically appends the caller to the tail, `mcs_set_next` links it
//! behind its predecessor, the waiter spins *locally* on its own `locked`
//! flag (`mcs_get_locked`), and release either clears the tail with a
//! compare-and-swap (no waiter) or hands the lock to the successor
//! (`mcs_grant`). All state is reconstructed by [`replay_mcs`].

use ccal_core::calculus::{check_fun, CertifiedLayer, CheckOptions, LayerError};
use ccal_core::event::{Event, EventKind};
use ccal_core::id::{Loc, Pid};
use ccal_core::layer::{LayerInterface, PrimSpec};
use ccal_core::log::Log;
use ccal_core::machine::MachineError;
use ccal_core::rely::{Conditions, Invariant, RelyGuarantee};
use ccal_core::sim::SimRelation;
use ccal_core::strategy::{Strategy, StrategyMove};
use ccal_core::val::Val;
use std::collections::BTreeMap;

use crate::ticket::{lock_interface, M1_SOURCE};

/// The ClightX source of the MCS lock module. The exported names are the
/// same `acq`/`rel` as the ticket lock's — interchangeability is by
/// construction.
pub const MCS_SOURCE: &str = r#"
void acq(int b) {
    int pred = mcs_swap(b);
    if (pred != -1) {
        mcs_set_next(b, pred);
        while (mcs_get_locked(b)) {}
    }
    hold(b);
}
void rel(int b) {
    int has = mcs_has_next(b);
    if (has == 0) {
        int ok = mcs_cas_tail(b);
        if (ok == 0) {
            while (mcs_has_next(b) == 0) {}
            mcs_grant(b);
        }
    } else {
        mcs_grant(b);
    }
}
"#;

/// One waiter node of the MCS queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McsNode {
    /// The successor waiting behind this node, once linked.
    pub next: Option<Pid>,
    /// Whether the node is still waiting for the lock.
    pub locked: bool,
}

/// The replayed MCS lock state at a location.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct McsState {
    /// The queue tail (last waiter), if any.
    pub tail: Option<Pid>,
    /// Live nodes by owner.
    pub nodes: BTreeMap<Pid, McsNode>,
}

/// `R_mcs`-style replay: folds the MCS events for lock `b` into the
/// queue-of-waiters state. Never stuck (the hardware primitives are
/// total); protocol violations are ruled out by the rely/guarantee
/// invariant instead.
pub fn replay_mcs(log: &Log, b: Loc) -> McsState {
    let mut st = McsState::default();
    for e in log.iter() {
        match e.kind {
            EventKind::McsSwap(loc) if loc == b => {
                st.nodes.insert(
                    e.pid,
                    McsNode {
                        next: None,
                        locked: st.tail.is_some(),
                    },
                );
                st.tail = Some(e.pid);
            }
            EventKind::McsSetNext(loc, pred) if loc == b => {
                if let Some(n) = st.nodes.get_mut(&pred) {
                    n.next = Some(e.pid);
                }
            }
            EventKind::McsCasTail(loc) if loc == b => {
                let no_next = st
                    .nodes
                    .get(&e.pid)
                    .map(|n| n.next.is_none())
                    .unwrap_or(false);
                if st.tail == Some(e.pid) && no_next {
                    st.tail = None;
                    st.nodes.remove(&e.pid);
                }
            }
            EventKind::McsGrant(loc, succ) if loc == b => {
                if let Some(n) = st.nodes.get_mut(&succ) {
                    n.locked = false;
                }
                st.nodes.remove(&e.pid);
            }
            _ => {}
        }
    }
    st
}

/// Whether `pid` currently holds the MCS lock at `b` (announced with
/// `hold`, released by a successful CAS or a grant). Used as the critical
/// predicate of the MCS bottom interface.
pub fn holds_mcs(pid: Pid, log: &Log) -> bool {
    let mut held: std::collections::BTreeSet<Loc> = std::collections::BTreeSet::new();
    for (at, e) in log.iter().enumerate() {
        if e.pid != pid {
            continue;
        }
        match e.kind {
            EventKind::Hold(b) => {
                held.insert(b);
            }
            EventKind::McsGrant(b, _) => {
                held.remove(&b);
            }
            EventKind::McsCasTail(b) => {
                // Successful iff the replay of the prefix (incl. this
                // event) removed our node.
                let prefix = Log::from_events(log.iter().take(at + 1).cloned());
                if !replay_mcs(&prefix, b).nodes.contains_key(&pid) {
                    held.remove(&b);
                }
            }
            _ => {}
        }
    }
    !held.is_empty()
}

/// The MCS critical-state predicate: the holder keeps control *except*
/// while waiting for a successor that has swapped in but not yet linked
/// itself (`tail ≠ me` and `next = None`) — in that window the release
/// loop genuinely depends on the successor's move, so the machine must
/// keep querying the environment (this is the subtle liveness hand-off
/// Kim et al. \[24\] verify).
pub fn in_critical_mcs(pid: Pid, log: &Log) -> bool {
    if !holds_mcs(pid, log) {
        return false;
    }
    // Which lock(s) do we hold? Check the wait window on each.
    let mut locks: std::collections::BTreeSet<Loc> = std::collections::BTreeSet::new();
    for e in log.iter() {
        if e.pid == pid {
            if let EventKind::Hold(b) = e.kind {
                locks.insert(b);
            }
        }
    }
    for b in locks {
        let st = replay_mcs(log, b);
        if let Some(node) = st.nodes.get(&pid) {
            if node.next.is_none() && st.tail != Some(pid) {
                // Waiting for the successor's link: not critical.
                return false;
            }
        }
    }
    true
}

fn arg_loc(args: &[Val]) -> Result<Loc, MachineError> {
    args.first()
        .ok_or_else(|| MachineError::Stuck("mcs primitive needs a location".into()))?
        .as_loc()
        .map_err(MachineError::from)
}

/// The MCS protocol invariant, used as rely and guarantee: per
/// participant, events follow swap → (set_next → get_locked*)? → hold →
/// (cas | grant).
pub fn mcs_protocol_invariant() -> Invariant {
    Invariant::new("mcs-protocol", |pid: Pid, log: &Log| {
        // A participant may not hold before being unlocked, nor grant
        // without a successor; we check the cheap structural part: hold
        // only after swap, grant/cas only after hold.
        let mut swapped = false;
        let mut holding = false;
        for (at, e) in log.iter().enumerate() {
            if e.pid != pid {
                continue;
            }
            match e.kind {
                EventKind::McsSwap(_) => {
                    if swapped || holding {
                        return false;
                    }
                    swapped = true;
                }
                EventKind::Hold(b) => {
                    if !swapped {
                        return false;
                    }
                    // Must actually be at the head: our node unlocked.
                    let prefix = Log::from_events(log.iter().take(at).cloned());
                    let st = replay_mcs(&prefix, b);
                    match st.nodes.get(&pid) {
                        Some(n) if !n.locked => {}
                        _ => return false,
                    }
                    swapped = false;
                    holding = true;
                }
                EventKind::McsGrant(_, _) => {
                    if !holding {
                        return false;
                    }
                    holding = false;
                }
                EventKind::McsCasTail(b) => {
                    if !holding {
                        return false;
                    }
                    let prefix = Log::from_events(log.iter().take(at + 1).cloned());
                    if !replay_mcs(&prefix, b).nodes.contains_key(&pid) {
                        holding = false;
                    }
                }
                _ => {}
            }
        }
        true
    })
}

/// The MCS bottom interface: hardware swap/CAS/link/grant primitives plus
/// the `hold` announcement and the `f`/`g` client primitives, all replayed
/// from the log.
pub fn l0_mcs_interface() -> LayerInterface {
    let conditions = {
        let c = Conditions::none().with(mcs_protocol_invariant());
        RelyGuarantee::new(c.clone(), c)
    };
    LayerInterface::builder("L0mcs")
        .prim(PrimSpec::atomic("mcs_swap", |ctx, args| {
            let b = arg_loc(args)?;
            let prev = replay_mcs(ctx.log, b).tail;
            ctx.emit(EventKind::McsSwap(b));
            Ok(Val::Int(prev.map_or(-1, |p| i64::from(p.0))))
        }))
        .prim(PrimSpec::atomic("mcs_set_next", |ctx, args| {
            let b = arg_loc(args)?;
            let pred = args
                .get(1)
                .ok_or_else(|| MachineError::Stuck("mcs_set_next needs a predecessor".into()))?
                .as_int()?;
            ctx.emit(EventKind::McsSetNext(b, Pid(pred as u32)));
            Ok(Val::Unit)
        }))
        .prim(PrimSpec::atomic("mcs_get_locked", |ctx, args| {
            let b = arg_loc(args)?;
            ctx.emit(EventKind::McsGetLocked(b));
            let locked = replay_mcs(ctx.log, b)
                .nodes
                .get(&ctx.pid)
                .map(|n| n.locked)
                .unwrap_or(false);
            Ok(Val::Int(i64::from(locked)))
        }))
        .prim(PrimSpec::atomic("mcs_has_next", |ctx, args| {
            let b = arg_loc(args)?;
            ctx.emit(EventKind::Prim("mcs_has_next".into(), vec![Val::Loc(b)]));
            let has = replay_mcs(ctx.log, b)
                .nodes
                .get(&ctx.pid)
                .map(|n| n.next.is_some())
                .unwrap_or(false);
            Ok(Val::Int(i64::from(has)))
        }))
        .prim(PrimSpec::atomic_unqueried("mcs_cas_tail", |ctx, args| {
            let b = arg_loc(args)?;
            let st = replay_mcs(ctx.log, b);
            let success = st.tail == Some(ctx.pid)
                && st.nodes.get(&ctx.pid).map(|n| n.next.is_none()).unwrap_or(false);
            ctx.emit(EventKind::McsCasTail(b));
            Ok(Val::Int(i64::from(success)))
        }))
        .prim(PrimSpec::atomic_unqueried("mcs_grant", |ctx, args| {
            let b = arg_loc(args)?;
            let succ = replay_mcs(ctx.log, b)
                .nodes
                .get(&ctx.pid)
                .and_then(|n| n.next)
                .ok_or_else(|| {
                    MachineError::Stuck(format!("mcs_grant({b}) without a successor"))
                })?;
            ctx.emit(EventKind::McsGrant(b, succ));
            Ok(Val::Unit)
        }))
        .prim(PrimSpec::atomic("hold", |ctx, args| {
            let b = arg_loc(args)?;
            ctx.emit(EventKind::Hold(b));
            Ok(Val::Unit)
        }))
        .prim(PrimSpec::atomic("f", |ctx, _| {
            ctx.emit(EventKind::Prim("f".into(), vec![]));
            Ok(Val::Unit)
        }))
        .prim(PrimSpec::atomic_unqueried("g", |ctx, _| {
            ctx.emit(EventKind::Prim("g".into(), vec![]));
            Ok(Val::Unit)
        }))
        .critical(in_critical_mcs)
        .conditions(conditions)
        .build()
}

/// The simulation relation from MCS low-level events to the atomic
/// `acq`/`rel` events of `L1`: `hold ↦ acq`, successful `cas`/`grant`
/// ↦ `rel`, every other MCS event erased. The atomic interface is shared
/// with the ticket lock, so higher layers cannot tell which lock they run
/// on.
pub fn r_mcs_relation() -> SimRelation {
    SimRelation::whole_log("Rmcs", |log: &Log| {
        let mut out = Log::new();
        for (at, e) in log.iter().enumerate() {
            match e.kind {
                EventKind::Hold(b) => out.append(Event::new(e.pid, EventKind::Acq(b))),
                EventKind::McsGrant(b, _) => out.append(Event::new(e.pid, EventKind::Rel(b))),
                EventKind::McsCasTail(b) => {
                    let prefix = Log::from_events(log.iter().take(at + 1).cloned());
                    if !replay_mcs(&prefix, b).nodes.contains_key(&e.pid) {
                        out.append(Event::new(e.pid, EventKind::Rel(b)));
                    }
                }
                EventKind::McsSwap(_)
                | EventKind::McsSetNext(_, _)
                | EventKind::McsGetLocked(_) => {}
                EventKind::Prim(ref n, _) if n == "mcs_has_next" => {}
                _ => out.append(e.clone()),
            }
        }
        Some(out)
    })
}

/// A well-behaved contending MCS environment participant: acquires through
/// the full swap/link/spin protocol and always releases promptly, as a
/// pure function of the log.
#[derive(Debug, Clone)]
pub struct McsEnvPlayer {
    pid: Pid,
    b: Loc,
    rounds: u64,
}

impl McsEnvPlayer {
    /// Creates a contender on MCS lock `b`.
    pub fn new(pid: Pid, b: Loc, rounds: u64) -> Self {
        Self { pid, b, rounds }
    }
}

impl Strategy for McsEnvPlayer {
    fn next_move(&self, log: &Log) -> StrategyMove {
        let st = replay_mcs(log, self.b);
        let holding = holds_mcs(self.pid, log);
        if holding {
            // Release: grant if a successor is linked, otherwise CAS; if
            // the CAS would fail (successor swapped but not yet linked),
            // wait for the link.
            let me = st.nodes.get(&self.pid);
            return match me.and_then(|n| n.next) {
                Some(succ) => StrategyMove::Emit(vec![Event::new(
                    self.pid,
                    EventKind::McsGrant(self.b, succ),
                )]),
                None if st.tail == Some(self.pid) => {
                    StrategyMove::Emit(vec![Event::new(self.pid, EventKind::McsCasTail(self.b))])
                }
                None => StrategyMove::idle(),
            };
        }
        match st.nodes.get(&self.pid) {
            Some(node) if !node.locked => {
                // Reached the head: announce.
                StrategyMove::Emit(vec![Event::new(self.pid, EventKind::Hold(self.b))])
            }
            Some(_) => StrategyMove::idle(), // spinning locally
            None => {
                let my_swaps = log
                    .iter()
                    .filter(|e| {
                        e.pid == self.pid
                            && matches!(e.kind, EventKind::McsSwap(b) if b == self.b)
                    })
                    .count() as u64;
                if my_swaps >= self.rounds {
                    return StrategyMove::idle();
                }
                // Swap in; link behind the predecessor in the same move
                // (swap + set_next are adjacent in the implementation).
                let mut evs = vec![Event::new(self.pid, EventKind::McsSwap(self.b))];
                if let Some(pred) = st.tail {
                    evs.push(Event::new(
                        self.pid,
                        EventKind::McsSetNext(self.b, pred),
                    ));
                }
                StrategyMove::Emit(evs)
            }
        }
    }

    fn may_emit(&self) -> Option<Vec<EventKind>> {
        Some(vec![
            EventKind::McsSwap(self.b),
            EventKind::McsSetNext(self.b, self.pid),
            EventKind::McsCasTail(self.b),
            EventKind::McsGrant(self.b, self.pid),
            EventKind::Hold(self.b),
        ])
    }

    fn name(&self) -> &str {
        "mcs-contender"
    }
}

/// Certifies the MCS lock module against the shared atomic lock interface:
/// `L0mcs[pid] ⊢_{Rmcs} Mmcs : L1[pid]`.
///
/// # Errors
///
/// The first failed obligation.
pub fn certify_mcs_lock(
    pid: Pid,
    b: Loc,
    contexts: Vec<ccal_core::env::EnvContext>,
) -> Result<CertifiedLayer, LayerError> {
    let m = ccal_clightx::clightx_module("Mmcs", MCS_SOURCE).map_err(|e| {
        LayerError::Machine(MachineError::Stuck(format!("Mmcs front-end: {e}")))
    })?;
    let lock_args = vec![vec![Val::Loc(b)]];
    let opts = CheckOptions::new(contexts)
        .with_workload("acq", lock_args.clone())
        .with_workload("rel", lock_args)
        // `rel` is only meaningful after an `acq` — check it from states
        // reached by a preceding acquire (Def. 2.1's related initial logs).
        .with_setup("rel", vec![("acq".to_owned(), vec![Val::Loc(b)])])
        .with_workload("f", vec![vec![]])
        .with_workload("g", vec![vec![]]);
    // The overlay is the *ticket lock's* atomic interface — but with the
    // MCS rely/guarantee at the bottom. The atomic side keeps its own
    // conditions.
    check_fun(&l0_mcs_interface(), &m, &lock_interface(), &r_mcs_relation(), pid, &opts)
}

/// Re-export of the ticket-lock source for side-by-side comparisons in
/// examples and benches (the two modules implement the same interface).
pub fn ticket_source() -> &'static str {
    M1_SOURCE
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_core::contexts::ContextGen;
    use std::sync::Arc;

    fn contexts(b: Loc) -> Vec<ccal_core::env::EnvContext> {
        ContextGen::new(vec![Pid(0), Pid(1)])
            .with_player(Pid(1), Arc::new(McsEnvPlayer::new(Pid(1), b, 2)))
            .with_schedule_len(3)
            .contexts()
    }

    #[test]
    fn replay_tracks_swap_link_grant() {
        let b = Loc(0);
        let log = Log::from_events([
            Event::new(Pid(0), EventKind::McsSwap(b)),
            Event::new(Pid(1), EventKind::McsSwap(b)),
            Event::new(Pid(1), EventKind::McsSetNext(b, Pid(0))),
        ]);
        let st = replay_mcs(&log, b);
        assert_eq!(st.tail, Some(Pid(1)));
        assert!(!st.nodes[&Pid(0)].locked, "head holds");
        assert!(st.nodes[&Pid(1)].locked, "waiter spins");
        assert_eq!(st.nodes[&Pid(0)].next, Some(Pid(1)));
    }

    #[test]
    fn cas_succeeds_only_for_sole_tail() {
        let b = Loc(0);
        let mut log = Log::from_events([Event::new(Pid(0), EventKind::McsSwap(b))]);
        log.append(Event::new(Pid(0), EventKind::McsCasTail(b)));
        let st = replay_mcs(&log, b);
        assert_eq!(st.tail, None);
        assert!(st.nodes.is_empty());
        // With a waiter, the CAS fails.
        let log = Log::from_events([
            Event::new(Pid(0), EventKind::McsSwap(b)),
            Event::new(Pid(1), EventKind::McsSwap(b)),
            Event::new(Pid(1), EventKind::McsSetNext(b, Pid(0))),
            Event::new(Pid(0), EventKind::McsCasTail(b)),
        ]);
        let st = replay_mcs(&log, b);
        assert_eq!(st.tail, Some(Pid(1)));
        assert!(st.nodes.contains_key(&Pid(0)), "holder still enqueued");
    }

    #[test]
    fn mcs_lock_certifies_against_the_shared_atomic_interface() {
        let b = Loc(0);
        let layer = certify_mcs_lock(Pid(0), b, contexts(b)).unwrap();
        assert_eq!(layer.overlay.name, "L1", "same interface as the ticket lock");
        assert!(layer.certificate.total_cases() > 0);
    }

    #[test]
    fn env_player_round_trips_the_protocol() {
        let b = Loc(0);
        let player = McsEnvPlayer::new(Pid(1), b, 2);
        let mut log = Log::new();
        for _ in 0..24 {
            if let StrategyMove::Emit(evs) = player.next_move(&log) {
                log.append_all(evs);
            }
            assert!(mcs_protocol_invariant().holds(Pid(1), &log));
        }
        assert!(replay_mcs(&log, b).nodes.is_empty(), "all rounds completed");
        assert!(!holds_mcs(Pid(1), &log));
    }

    #[test]
    fn relation_abstracts_a_contended_run() {
        let b = Loc(0);
        let log = Log::from_events([
            Event::new(Pid(0), EventKind::McsSwap(b)),
            Event::new(Pid(0), EventKind::Hold(b)),
            Event::new(Pid(1), EventKind::McsSwap(b)),
            Event::new(Pid(1), EventKind::McsSetNext(b, Pid(0))),
            Event::new(Pid(1), EventKind::McsGetLocked(b)),
            Event::new(Pid(0), EventKind::McsGrant(b, Pid(1))),
            Event::new(Pid(1), EventKind::Hold(b)),
            Event::new(Pid(1), EventKind::McsCasTail(b)),
        ]);
        let abstracted = r_mcs_relation().abstracted(&log).unwrap();
        let expected = Log::from_events([
            Event::new(Pid(0), EventKind::Acq(b)),
            Event::new(Pid(0), EventKind::Rel(b)),
            Event::new(Pid(1), EventKind::Acq(b)),
            Event::new(Pid(1), EventKind::Rel(b)),
        ]);
        assert_eq!(abstracted, expected);
    }
}
