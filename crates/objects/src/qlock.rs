//! The queuing lock (§5.4, Fig. 11): waiting threads sleep instead of
//! spinning.
//!
//! "Reasoning about this locking algorithm is particularly challenging
//! since its C implementation utilizes both spinlocks and low-level
//! scheduler primitives (i.e., sleep and wakeup)" (§5.4). The stack here
//! is exactly the paper's: the implementation [`QLOCK_SOURCE`] runs over
//! the thread-local scheduler interface `Lhtd` (atomic spinlock +
//! `sleep`/`wakeup`) extended with the `ql_busy` accessors; the overlay
//! exposes the atomic events `t.acq_q(l)` / `t.rel_q(l)`.
//!
//! Mutual exclusion rests on the invariant that "the busy value of the
//! lock (`ql_busy`) is always equal to the lock holder's thread ID",
//! maintained "either by the lock requester when the lock is free (line 6
//! of Fig. 11) or by the previous lock holder when releasing the lock
//! (line 12)" — our `ql_take` / `ql_pass` events. Starvation freedom
//! follows from holders waking the FIFO front sleeper.

use ccal_core::calculus::{check_fun, CertifiedLayer, CheckOptions, LayerError};
use ccal_core::event::{declare_prim_footprint, Event, EventKind, PrimFootprint};
use ccal_core::id::{Loc, Pid, QId};
use ccal_core::layer::{LayerInterface, PrimCtx, PrimRun, PrimSpec, PrimStep};
use ccal_core::log::Log;
use ccal_core::machine::MachineError;
use ccal_core::replay::replay_atomic_lock;
use ccal_core::sim::SimRelation;
use ccal_core::strategy::{Strategy, StrategyMove};
use ccal_core::val::Val;

use crate::sched::{replay_sleepers, sched_overlay, PENDQ_BASE};
use crate::ticket::holds_atomic_lock;

/// The ClightX source of the queuing lock — Fig. 11, with `ql_take` /
/// `ql_pass` as the observable busy-value writes. The sleeping queue and
/// the protecting spinlock of qlock `l` are both indexed by `l`
/// (`ql_loc(l) = l`).
pub const QLOCK_SOURCE: &str = r#"
void acq_q(int l) {
    acq(l);
    int busy = ql_get_busy(l);
    if (busy != -1) {
        sleep(l, l);
    } else {
        ql_take(l);
        rel(l);
    }
}
void rel_q(int l) {
    acq(l);
    int t = wakeup(l);
    ql_pass(l, t);
    rel(l);
}
"#;

/// The replayed `ql_busy` value of qlock `l`: the current holder's thread
/// id, or `-1` when free. Folds the `ql_take`/`ql_pass` events.
pub fn replay_ql_busy(log: &Log, l: Loc) -> i64 {
    let mut busy = -1_i64;
    for e in log.iter() {
        match &e.kind {
            EventKind::Prim(n, args) if n == "ql_take" && args.first() == Some(&Val::Loc(l)) => {
                busy = i64::from(e.pid.0);
            }
            EventKind::Prim(n, args) if n == "ql_pass" && args.first() == Some(&Val::Loc(l)) => {
                busy = args.get(1).and_then(|v| v.as_int().ok()).unwrap_or(-1);
            }
            _ => {}
        }
    }
    busy
}

fn arg_loc(args: &[Val]) -> Result<Loc, MachineError> {
    args.first()
        .ok_or_else(|| MachineError::Stuck("qlock primitive needs a location".into()))?
        .as_loc()
        .map_err(MachineError::from)
}

/// Declares the queuing-lock primitives' footprints: `ql_take(l)` and
/// `ql_pass(l, t)` read and write only the busy value of lock `l` (the
/// `Val::Loc` argument), so their events carry the footprint `{Loc(l)}`
/// rather than the conservative global one. The woken-thread argument of
/// `ql_pass` is an `Int`, not a location — the hand-off it names is a
/// separate `Wakeup` event with its own queue footprint.
pub fn declare_qlock_footprints() {
    declare_prim_footprint("ql_take", PrimFootprint::Args);
    declare_prim_footprint("ql_pass", PrimFootprint::Args);
}

/// The queuing lock's underlay: the thread-local scheduler interface
/// (`acq`/`rel`/`yield`/`sleep`/`wakeup`) plus the `ql_busy` accessors,
/// which require holding the protecting spinlock.
pub fn qlock_underlay() -> LayerInterface {
    declare_qlock_footprints();
    let base = sched_overlay();
    let mut b = LayerInterface::builder("Lql");
    for name in base.prim_names() {
        b = b.prim(base.prim(name).expect("listed").clone());
    }
    b.prim(PrimSpec::private("ql_get_busy", |ctx, args| {
        let l = arg_loc(args)?;
        if replay_atomic_lock(ctx.log, l)? != Some(ctx.pid) {
            return Err(MachineError::Stuck(format!(
                "ql_get_busy({l}) without holding the spinlock"
            )));
        }
        Ok(Val::Int(replay_ql_busy(ctx.log, l)))
    }))
    .prim(PrimSpec::atomic_unqueried("ql_take", |ctx, args| {
        let l = arg_loc(args)?;
        if replay_atomic_lock(ctx.log, l)? != Some(ctx.pid) {
            return Err(MachineError::Stuck(format!(
                "ql_take({l}) without holding the spinlock"
            )));
        }
        ctx.emit(EventKind::Prim("ql_take".into(), vec![Val::Loc(l)]));
        Ok(Val::Unit)
    }))
    .prim(PrimSpec::atomic_unqueried("ql_pass", |ctx, args| {
        let l = arg_loc(args)?;
        let t = args
            .get(1)
            .cloned()
            .ok_or_else(|| MachineError::Stuck("ql_pass needs a thread".into()))?;
        if replay_atomic_lock(ctx.log, l)? != Some(ctx.pid) {
            return Err(MachineError::Stuck(format!(
                "ql_pass({l}) without holding the spinlock"
            )));
        }
        ctx.emit(EventKind::Prim("ql_pass".into(), vec![Val::Loc(l), t]));
        Ok(Val::Unit)
    }))
    .critical(holds_atomic_lock)
    .build()
}

/// The atomic queuing-lock acquire strategy: wait for the qlock to be
/// free (per the `acq_q`/`rel_q` replay), then take it in one event.
#[derive(Clone)]
struct PhiAcqQ {
    args: Vec<Val>,
    queried: bool,
}

impl PrimRun for PhiAcqQ {
    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        Some(Box::new(self.clone()))
    }

    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        let l = arg_loc(&self.args)?;
        if !self.queried {
            self.queried = true;
            return Ok(PrimStep::Query);
        }
        // If a releaser handed the lock to us (our acq_q event appears in
        // the log already via the handoff abstraction), we are done;
        // otherwise take it when free.
        if replay_atomic_lock(ctx.log, l)? == Some(ctx.pid) {
            return Ok(PrimStep::Done(Val::Unit));
        }
        if replay_atomic_lock(ctx.log, l)?.is_none() {
            ctx.emit(EventKind::AcqQ(l));
            Ok(PrimStep::Done(Val::Unit))
        } else {
            Ok(PrimStep::Query)
        }
    }
}

/// The atomic queuing-lock overlay: `acq_q`/`rel_q` as single events.
pub fn qlock_overlay() -> LayerInterface {
    LayerInterface::builder("Lqlock")
        .prim(PrimSpec::strategy("acq_q", true, |_pid, args| {
            Box::new(PhiAcqQ {
                args,
                queried: false,
            })
        }))
        .prim(PrimSpec::atomic_unqueried("rel_q", |ctx, args| {
            let l = arg_loc(args)?;
            ctx.emit(EventKind::RelQ(l));
            Ok(Val::Unit)
        }))
        .critical(holds_atomic_lock)
        .build()
}

/// `R_ql`: `ql_take` is the requester's linearization point
/// (`t.acq_q(l)`); `ql_pass(l, t)` is the releaser's (`rel_q`, plus the
/// handed-off `acq_q` authored by the woken thread `t`); the spinlock and
/// scheduler events are erased.
pub fn r_ql_relation() -> SimRelation {
    SimRelation::per_event("Rql", |e| match &e.kind {
        EventKind::Prim(n, args) if n == "ql_take" => {
            let l = args.first().and_then(|v| v.as_loc().ok()).expect("ql_take loc");
            vec![Event::new(e.pid, EventKind::AcqQ(l))]
        }
        EventKind::Prim(n, args) if n == "ql_pass" => {
            let l = args.first().and_then(|v| v.as_loc().ok()).expect("ql_pass loc");
            let t = args.get(1).and_then(|v| v.as_int().ok()).unwrap_or(-1);
            let mut out = vec![Event::new(e.pid, EventKind::RelQ(l))];
            if t >= 0 {
                out.push(Event::new(Pid(t as u32), EventKind::AcqQ(l)));
            }
            out
        }
        EventKind::Acq(_)
        | EventKind::Rel(_)
        | EventKind::Sleep(_, _)
        | EventKind::Wakeup(_)
        | EventKind::Yield => vec![],
        EventKind::EnQ(q, _) | EventKind::DeQ(q) if q.0 >= PENDQ_BASE => vec![],
        _ => vec![e.clone()],
    })
}

/// A well-behaved queuing-lock environment thread: acquires through the
/// Fig. 11 fast/slow paths and always releases, as a pure function of the
/// log. It emits exactly the event shapes the implementation produces.
#[derive(Debug, Clone)]
pub struct QlockEnvPlayer {
    pid: Pid,
    l: Loc,
    rounds: u64,
}

impl QlockEnvPlayer {
    /// Creates a contender on qlock `l`.
    pub fn new(pid: Pid, l: Loc, rounds: u64) -> Self {
        declare_qlock_footprints();
        Self { pid, l, rounds }
    }
}

impl Strategy for QlockEnvPlayer {
    fn next_move(&self, log: &Log) -> StrategyMove {
        let holds_q = replay_ql_busy(log, self.l) == i64::from(self.pid.0);
        if holds_q {
            // Release: take the spinlock, wake the front sleeper, pass.
            let woken = replay_sleepers(log, QId(self.l.0))
                .first()
                .map_or(-1, |p| i64::from(p.0));
            if replay_atomic_lock(log, self.l) != Ok(None) {
                return StrategyMove::idle();
            }
            return StrategyMove::Emit(vec![
                Event::new(self.pid, EventKind::Acq(self.l)),
                Event::new(self.pid, EventKind::Wakeup(QId(self.l.0))),
                Event::new(
                    self.pid,
                    EventKind::Prim("ql_pass".into(), vec![Val::Loc(self.l), Val::Int(woken)]),
                ),
                Event::new(self.pid, EventKind::Rel(self.l)),
            ]);
        }
        if crate::sched::is_sleeping(log, QId(self.l.0), self.pid) {
            return StrategyMove::idle();
        }
        let acquisitions = log
            .iter()
            .filter(|e| {
                e.pid == self.pid
                    && matches!(&e.kind, EventKind::Prim(n, args) if n == "ql_take"
                        && args.first() == Some(&Val::Loc(self.l)))
            })
            .count() as u64
            + log
                .iter()
                .filter(|e| {
                    matches!(&e.kind, EventKind::Prim(n, args) if n == "ql_pass"
                        && args.first() == Some(&Val::Loc(self.l))
                        && args.get(1) == Some(&Val::Int(i64::from(self.pid.0))))
                })
                .count() as u64;
        if acquisitions >= self.rounds || replay_atomic_lock(log, self.l) != Ok(None) {
            return StrategyMove::idle();
        }
        if replay_ql_busy(log, self.l) == -1 {
            // Fast path: spinlock, check busy, take, unlock.
            StrategyMove::Emit(vec![
                Event::new(self.pid, EventKind::Acq(self.l)),
                Event::new(
                    self.pid,
                    EventKind::Prim("ql_take".into(), vec![Val::Loc(self.l)]),
                ),
                Event::new(self.pid, EventKind::Rel(self.l)),
            ])
        } else {
            // Slow path: spinlock, busy, sleep (which releases the
            // spinlock).
            StrategyMove::Emit(vec![
                Event::new(self.pid, EventKind::Acq(self.l)),
                Event::new(self.pid, EventKind::Sleep(QId(self.l.0), self.l)),
                Event::new(self.pid, EventKind::Rel(self.l)),
            ])
        }
    }

    fn may_emit(&self) -> Option<Vec<EventKind>> {
        // With the declared `ql_take`/`ql_pass` footprints
        // ([`declare_qlock_footprints`]), every kind here is local to lock
        // `l` and its sleeping queue, so this alphabet licenses reductions
        // against players touching disjoint state. The decisions above
        // read only this pid's projection plus the replayed state of `l`
        // and `QId(l.0)`, as `Strategy::may_emit` requires.
        Some(vec![
            EventKind::Acq(self.l),
            EventKind::Rel(self.l),
            EventKind::Wakeup(QId(self.l.0)),
            EventKind::Sleep(QId(self.l.0), self.l),
            EventKind::Prim("ql_take".into(), vec![Val::Loc(self.l)]),
            EventKind::Prim("ql_pass".into(), vec![Val::Loc(self.l), Val::Int(0)]),
        ])
    }

    fn name(&self) -> &str {
        "qlock-contender"
    }
}

/// Certifies the queuing lock: `Lql[t] ⊢_{Rql} Mql : Lqlock[t]`.
///
/// # Errors
///
/// The first failed obligation.
pub fn certify_qlock(
    pid: Pid,
    l: Loc,
    contexts: Vec<ccal_core::env::EnvContext>,
) -> Result<CertifiedLayer, LayerError> {
    let m = ccal_clightx::clightx_module("Mql", QLOCK_SOURCE).map_err(|e| {
        LayerError::Machine(MachineError::Stuck(format!("Mql front-end: {e}")))
    })?;
    let args = vec![vec![Val::Loc(l)]];
    let opts = CheckOptions::new(contexts)
        .with_workload("acq_q", args.clone())
        .with_workload("rel_q", args)
        .with_setup("rel_q", vec![("acq_q".to_owned(), vec![Val::Loc(l)])]);
    check_fun(&qlock_underlay(), &m, &qlock_overlay(), &r_ql_relation(), pid, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_core::contexts::ContextGen;
    use std::sync::Arc;

    pub(crate) fn contexts(l: Loc) -> Vec<ccal_core::env::EnvContext> {
        ContextGen::new(vec![Pid(0), Pid(1)])
            .with_player(Pid(1), Arc::new(QlockEnvPlayer::new(Pid(1), l, 2)))
            .with_schedule_len(3)
            .contexts()
    }

    #[test]
    fn busy_replay_tracks_take_and_pass() {
        let l = Loc(4);
        let mut log = Log::new();
        assert_eq!(replay_ql_busy(&log, l), -1);
        log.append(Event::new(
            Pid(0),
            EventKind::Prim("ql_take".into(), vec![Val::Loc(l)]),
        ));
        assert_eq!(replay_ql_busy(&log, l), 0);
        log.append(Event::new(
            Pid(0),
            EventKind::Prim("ql_pass".into(), vec![Val::Loc(l), Val::Int(7)]),
        ));
        assert_eq!(replay_ql_busy(&log, l), 7);
    }

    #[test]
    fn qlock_certifies() {
        let l = Loc(4);
        let layer = certify_qlock(Pid(0), l, contexts(l)).unwrap();
        assert!(layer.certificate.total_cases() > 0);
        assert_eq!(layer.relation.name(), "Rql");
    }

    #[test]
    fn busy_accessors_require_the_spinlock() {
        use ccal_core::env::EnvContext;
        use ccal_core::machine::LayerMachine;
        use ccal_core::strategy::RoundRobinScheduler;
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(1)));
        let mut m = LayerMachine::new(qlock_underlay(), Pid(0), env);
        assert!(matches!(
            m.call_prim("ql_take", &[Val::Loc(Loc(0))]),
            Err(MachineError::Stuck(_))
        ));
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        // Run two threads doing acq_q/rel_q on the implementation machine
        // over many interleavings; the abstracted history must be a legal
        // lock history (well-bracketed AcqQ/RelQ).
        use ccal_core::id::PidSet;
        use std::collections::BTreeMap;
        let l = Loc(4);
        let m = ccal_clightx::clightx_module("Mql", QLOCK_SOURCE).unwrap();
        let iface = m.install(&qlock_underlay()).unwrap();
        let mut programs = BTreeMap::new();
        for t in 0..2 {
            programs.insert(
                Pid(t),
                vec![
                    ("acq_q".to_owned(), vec![Val::Loc(l)]),
                    ("rel_q".to_owned(), vec![Val::Loc(l)]),
                ],
            );
        }
        let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
            .with_schedule_len(5)
            .with_max_contexts(24)
            .contexts();
        let ob = ccal_verifier::check_linearizability(
            &iface,
            &PidSet::from_pids([Pid(0), Pid(1)]),
            &programs,
            &r_ql_relation(),
            &*ccal_verifier::lock_history_validator(),
            &contexts,
            200_000,
        )
        .unwrap();
        assert!(ob.cases_checked > 0);
    }

    #[test]
    fn env_player_is_protocol_clean() {
        let l = Loc(4);
        let player = QlockEnvPlayer::new(Pid(1), l, 2);
        let mut log = Log::new();
        for _ in 0..30 {
            if let StrategyMove::Emit(evs) = player.next_move(&log) {
                log.append_all(evs);
            }
        }
        // Ends with the lock free and the player idle.
        assert_eq!(replay_ql_busy(&log, l), -1);
        assert_eq!(replay_atomic_lock(&log, l), Ok(None));
    }
}
