//! The thread scheduler: `yield` / `sleep` / `wakeup` over shared thread
//! queues (§5.1), the multithreaded layer interfaces of §5.2–5.3, and the
//! executable Theorem 5.1 (multithreaded linking).
//!
//! Each CPU has a private ready queue `rdq` and a shared pending queue
//! `pendq` ("containing the threads woken up by other CPUs"); sleeping
//! threads wait on shared sleeping queues. "A thread yield sends the first
//! pending thread from `pendq` to `rdq` and then switches to the next
//! ready thread" (§5.1). Context switching (`cswitch`) "can only be
//! implemented at the assembly level" — here it is a hand-written
//! [`ccal_machine::asm`] function saving and loading the kernel context
//! through private primitives.
//!
//! The overlay `Lhtd` exposes the *atomic* scheduling primitives whose
//! only footprint is the events `t.yield` / `t.sleep(q, lk)` /
//! `t.wakeup(q)`: on the thread-local interface they "do not modify the
//! kernel context and effectively act as a 'no-op', except that the shared
//! log gets updated" (§5.3) — which also makes them satisfy C calling
//! conventions, the key to thread-safe compilation.

use ccal_core::calculus::{check_fun, CertifiedLayer, CheckOptions, LayerError, Obligation};
use ccal_core::event::{Event, EventKind};
use ccal_core::id::{Loc, Pid, QId};
use ccal_core::layer::{LayerInterface, PrimCtx, PrimRun, PrimSpec, PrimStep};
use ccal_core::log::Log;
use ccal_core::machine::MachineError;
use ccal_core::module::Module;
use ccal_core::sim::SimRelation;
use ccal_core::strategy::{Strategy, StrategyMove};
use ccal_core::val::Val;
use ccal_machine::asm::{AsmFunction, AsmModule, Instr, Reg};

use crate::ticket::holds_atomic_lock;

/// Queue ids at or above this bound are scheduler pending queues; the
/// relation [`r_sched_relation`] erases their traffic.
pub const PENDQ_BASE: u32 = 100;

/// The pending queue of CPU `c`.
pub fn pendq(c: u32) -> Loc {
    Loc(PENDQ_BASE + c)
}

/// The ClightX part of the scheduler module (the assembly part is
/// [`cswitch_asm`]).
pub const SCHED_C_SOURCE: &str = r#"
void yield() {
    int t = pdeq(#100);
    if (t != -1) { rdq_enq(t); }
    int nxt = rdq_deq();
    if (nxt != -1) { cswitch(nxt); }
    log_yield();
}
void sleep(int q, int lk) {
    log_sleep(q, lk);
    wait_wakeup(q);
}
int wakeup(int q) {
    int t = wake_t(q);
    if (t != -1) { penq(#100, t); }
    return t;
}
"#;

/// The hand-written assembly context switch (§5.1): save the current
/// thread's kernel context, set the current thread id, load the target's
/// context. "This cswitch ... can only be implemented at the assembly
/// level, as it does not satisfy the C calling convention."
pub fn cswitch_asm() -> AsmModule {
    AsmModule::new().with_fn(AsmFunction::new(
        "cswitch",
        1,
        1,
        vec![
            // slot0 := target thread id (argument in EAX).
            Instr::StoreSlot(0, Reg::EAX),
            // save_ctx(curid())
            Instr::PrimCall("curid".to_owned(), 0),
            Instr::PrimCall("save_ctx".to_owned(), 1),
            // set_curid(target)
            Instr::Mov(Reg::EAX, ccal_machine::asm::Operand::Slot(0)),
            Instr::PrimCall("set_curid".to_owned(), 1),
            // load_ctx(target)
            Instr::Mov(Reg::EAX, ccal_machine::asm::Operand::Slot(0)),
            Instr::PrimCall("load_ctx".to_owned(), 1),
            Instr::RetVoid,
        ],
    ))
}

/// The sleeping threads of queue `q` (FIFO), replayed from `sleep` and
/// `wakeup` events — the paper's `R_sched` tracks the running thread the
/// same way (§5.1).
pub fn replay_sleepers(log: &Log, q: QId) -> Vec<Pid> {
    let mut sleepers = Vec::new();
    for e in log.iter() {
        match e.kind {
            EventKind::Sleep(qq, _) if qq == q => sleepers.push(e.pid),
            EventKind::Wakeup(qq) if qq == q && !sleepers.is_empty() => {
                sleepers.remove(0);
            }
            _ => {}
        }
    }
    sleepers
}

/// Whether `pid` is currently sleeping on queue `q`.
pub fn is_sleeping(log: &Log, q: QId, pid: Pid) -> bool {
    replay_sleepers(log, q).contains(&pid)
}

fn arg_loc(args: &[Val], i: usize) -> Result<Loc, MachineError> {
    args.get(i)
        .ok_or_else(|| MachineError::Stuck(format!("missing location argument {i}")))?
        .as_loc()
        .map_err(MachineError::from)
}

/// Blocking until woken: the tail of `sleep`. Queries the environment
/// until a `wakeup` pops the caller off the sleeping queue — liveness
/// rests on the rely that sleepers are eventually woken (§5.4 proves this
/// for the queuing lock).
#[derive(Clone)]
struct WaitWakeup {
    q: QId,
}

impl PrimRun for WaitWakeup {
    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        Some(Box::new(self.clone()))
    }

    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        if is_sleeping(ctx.log, self.q, ctx.pid) {
            Ok(PrimStep::Query)
        } else {
            Ok(PrimStep::Done(Val::Unit))
        }
    }
}

/// The scheduler's underlay `Lsq`: atomic lock (`acq`/`rel`, pass-through
/// for the queuing lock above), pending-queue operations, private ready
/// queue, kernel-context accessors, and the event-emitting scheduling
/// sub-primitives.
pub fn sched_underlay() -> LayerInterface {
    let lock = crate::ticket::lock_interface();
    let mut b = LayerInterface::builder("Lsq");
    for name in ["acq", "rel"] {
        b = b.prim(lock.prim(name).expect("lock prim").clone());
    }
    b.prim(PrimSpec::atomic("pdeq", |ctx, args| {
        let q = arg_loc(args, 0)?;
        ctx.emit(EventKind::DeQ(QId(q.0)));
        Ok(ccal_core::replay::deq_result(ctx.log, ctx.log.len() - 1))
    }))
    .prim(PrimSpec::atomic_unqueried("penq", |ctx, args| {
        let q = arg_loc(args, 0)?;
        let v = args
            .get(1)
            .cloned()
            .ok_or_else(|| MachineError::Stuck("penq needs a value".into()))?;
        ctx.emit(EventKind::EnQ(QId(q.0), v));
        Ok(Val::Unit)
    }))
    .prim(PrimSpec::private("rdq_enq", |ctx, args| {
        let t = args.first()
            .cloned()
            .ok_or_else(|| MachineError::Stuck("rdq_enq needs a thread".into()))?;
        let key = format!("rdq[{}]", ctx.pid);
        let mut items = match ctx.abs.get_or_undef(&key) {
            Val::List(items) => items,
            _ => Vec::new(),
        };
        items.push(t);
        ctx.abs.set(&key, Val::List(items));
        Ok(Val::Unit)
    }))
    .prim(PrimSpec::private("rdq_deq", |ctx, _| {
        let key = format!("rdq[{}]", ctx.pid);
        let mut items = match ctx.abs.get_or_undef(&key) {
            Val::List(items) => items,
            _ => Vec::new(),
        };
        if items.is_empty() {
            return Ok(Val::Int(-1));
        }
        let front = items.remove(0);
        ctx.abs.set(&key, Val::List(items));
        Ok(front)
    }))
    .prim(PrimSpec::private("curid", |ctx, _| {
        Ok(ctx.abs.get_or_undef("curid"))
    }))
    .prim(PrimSpec::private("set_curid", |ctx, args| {
        let t = args.first()
            .cloned()
            .ok_or_else(|| MachineError::Stuck("set_curid needs a thread".into()))?;
        ctx.abs.set("curid", t);
        Ok(Val::Unit)
    }))
    .prim(PrimSpec::private("save_ctx", |ctx, args| {
        let t = args.first().and_then(|v| v.as_int().ok()).unwrap_or(-1);
        // Saving ra/ebp/ebx/esi/edi/esp (§5.1) — summarized as one token.
        ctx.abs
            .set(&format!("ctxt[{t}]"), Val::Str(format!("ctx-of-{t}")));
        Ok(Val::Unit)
    }))
    .prim(PrimSpec::private("load_ctx", |ctx, args| {
        let t = args.first().and_then(|v| v.as_int().ok()).unwrap_or(-1);
        Ok(ctx.abs.get_or_undef(&format!("ctxt[{t}]")))
    }))
    .prim(PrimSpec::atomic_unqueried("log_yield", |ctx, _| {
        ctx.emit(EventKind::Yield);
        Ok(Val::Unit)
    }))
    .prim(PrimSpec::atomic_unqueried("log_sleep", |ctx, args| {
        let q = arg_loc(args, 0)?;
        let lk = arg_loc(args, 1)?;
        // sleep(i, lk): "sleep on queue i while holding the lock lk" — the
        // primitive releases the lock atomically with going to sleep.
        ctx.emit(EventKind::Sleep(QId(q.0), lk));
        ctx.emit(EventKind::Rel(lk));
        Ok(Val::Unit)
    }))
    .prim(PrimSpec::strategy("wait_wakeup", true, |_pid, args| {
        let q = args
            .first()
            .and_then(|v| v.as_loc().ok())
            .map(|l| QId(l.0))
            .unwrap_or(QId(0));
        Box::new(WaitWakeup { q })
    }))
    .prim(PrimSpec::atomic_unqueried("wake_t", |ctx, args| {
        let q = arg_loc(args, 0)?;
        let front = replay_sleepers(ctx.log, QId(q.0)).first().copied();
        ctx.emit(EventKind::Wakeup(QId(q.0)));
        Ok(front.map_or(Val::Int(-1), |p| Val::Int(i64::from(p.0))))
    }))
    .critical(holds_atomic_lock)
    .build()
}

#[derive(Clone)]
struct AtomicYield {
    queried: bool,
}

impl PrimRun for AtomicYield {
    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        Some(Box::new(self.clone()))
    }

    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        if !self.queried {
            self.queried = true;
            return Ok(PrimStep::Query);
        }
        ctx.emit(EventKind::Yield);
        Ok(PrimStep::Done(Val::Unit))
    }
}

#[derive(Clone)]
struct AtomicSleep {
    args: Vec<Val>,
    phase: u8,
}

impl PrimRun for AtomicSleep {
    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        Some(Box::new(self.clone()))
    }

    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        let q = QId(arg_loc(&self.args, 0)?.0);
        let lk = arg_loc(&self.args, 1)?;
        match self.phase {
            0 => {
                ctx.emit(EventKind::Sleep(q, lk));
                ctx.emit(EventKind::Rel(lk));
                self.phase = 1;
                Ok(PrimStep::Query)
            }
            _ => {
                if is_sleeping(ctx.log, q, ctx.pid) {
                    Ok(PrimStep::Query)
                } else {
                    Ok(PrimStep::Done(Val::Unit))
                }
            }
        }
    }
}

/// The thread-local overlay `Lhtd`: atomic `yield` / `sleep` / `wakeup`
/// plus the pass-through atomic lock. These primitives "effectively act as
/// a no-op, except that the shared log gets updated" (§5.3).
pub fn sched_overlay() -> LayerInterface {
    let lock = crate::ticket::lock_interface();
    let mut b = LayerInterface::builder("Lhtd");
    for name in ["acq", "rel"] {
        b = b.prim(lock.prim(name).expect("lock prim").clone());
    }
    b.prim(PrimSpec::strategy("yield", true, |_pid, _args| {
        Box::new(AtomicYield { queried: false })
    }))
    .prim(PrimSpec::strategy("sleep", true, |_pid, args| {
        Box::new(AtomicSleep { args, phase: 0 })
    }))
    .prim(PrimSpec::atomic_unqueried("wakeup", |ctx, args| {
        let q = arg_loc(args, 0)?;
        let front = replay_sleepers(ctx.log, QId(q.0)).first().copied();
        ctx.emit(EventKind::Wakeup(QId(q.0)));
        Ok(front.map_or(Val::Int(-1), |p| Val::Int(i64::from(p.0))))
    }))
    .critical(holds_atomic_lock)
    .build()
}

/// `R_sched`: pending-queue traffic (queue ids ≥ [`PENDQ_BASE`]) is
/// erased; the scheduling events themselves are kept.
pub fn r_sched_relation() -> SimRelation {
    SimRelation::per_event("Rsched", |e| match e.kind {
        EventKind::EnQ(q, _) | EventKind::DeQ(q) if q.0 >= PENDQ_BASE => vec![],
        _ => vec![e.clone()],
    })
}

/// The scheduler module: ClightX `yield`/`sleep`/`wakeup` linked with the
/// assembly `cswitch`.
///
/// # Errors
///
/// Front-end or linking failures.
pub fn sched_module() -> Result<Module, LayerError> {
    let c = ccal_clightx::clightx_module("Msched.c", SCHED_C_SOURCE).map_err(|e| {
        LayerError::Machine(MachineError::Stuck(format!("Msched front-end: {e}")))
    })?;
    let asm = cswitch_asm().as_core_module("Msched.s");
    Ok(c.link(&asm)?)
}

/// An environment thread that wakes sleepers (and otherwise yields), as a
/// pure function of the log — the "other threads wake it up to ensure
/// liveness" side of the bargain (§1).
#[derive(Debug, Clone)]
pub struct WakerEnvPlayer {
    pid: Pid,
    q: QId,
    yields: u64,
}

impl WakerEnvPlayer {
    /// Creates a waker for sleeping queue `q` that also yields up to
    /// `yields` times.
    pub fn new(pid: Pid, q: QId, yields: u64) -> Self {
        Self { pid, q, yields }
    }
}

impl Strategy for WakerEnvPlayer {
    fn next_move(&self, log: &Log) -> StrategyMove {
        if !replay_sleepers(log, self.q).is_empty() {
            // Wake the front sleeper and push it to the pending queue —
            // the same shape the implementation produces.
            let woken = replay_sleepers(log, self.q)[0];
            return StrategyMove::Emit(vec![
                Event::new(self.pid, EventKind::Wakeup(self.q)),
                Event::new(
                    self.pid,
                    EventKind::EnQ(QId(PENDQ_BASE), Val::Int(i64::from(woken.0))),
                ),
            ]);
        }
        let yielded = log
            .iter()
            .filter(|e| e.pid == self.pid && matches!(e.kind, EventKind::Yield))
            .count() as u64;
        if yielded < self.yields {
            StrategyMove::Emit(vec![Event::new(self.pid, EventKind::Yield)])
        } else {
            StrategyMove::idle()
        }
    }

    fn may_emit(&self) -> Option<Vec<EventKind>> {
        Some(vec![
            EventKind::Wakeup(self.q),
            EventKind::EnQ(QId(PENDQ_BASE), Val::Int(0)),
            EventKind::Yield,
        ])
    }

    fn name(&self) -> &str {
        "waker"
    }
}

/// Certifies the scheduler: `Lsq[t] ⊢_{Rsched} Msched : Lhtd[t]`.
///
/// # Errors
///
/// The first failed obligation.
pub fn certify_scheduler(
    pid: Pid,
    sleep_q: QId,
    lk: Loc,
    contexts: Vec<ccal_core::env::EnvContext>,
) -> Result<CertifiedLayer, LayerError> {
    let m = sched_module()?;
    let opts = CheckOptions::new(contexts)
        .with_workload("yield", vec![vec![]])
        .with_workload(
            "sleep",
            vec![vec![Val::Loc(Loc(sleep_q.0)), Val::Loc(lk)]],
        )
        // sleep(q, lk) releases lk, so acquire it first.
        .with_setup("sleep", vec![("acq".to_owned(), vec![Val::Loc(lk)])])
        .with_workload("wakeup", vec![vec![Val::Loc(Loc(sleep_q.0))]])
        .with_workload("acq", vec![vec![Val::Loc(lk)]])
        .with_workload("rel", vec![vec![Val::Loc(lk)]])
        .with_setup("rel", vec![("acq".to_owned(), vec![Val::Loc(lk)])]);
    check_fun(&sched_underlay(), &m, &sched_overlay(), &r_sched_relation(), pid, &opts)
}

/// Executable Theorem 5.1 (multithreaded linking): with the whole thread
/// set focused, the behaviors of thread programs over the implementation
/// machine (`Lbtd` = `Msched` installed over `Lsq`) contextually refine
/// their behaviors over the multithreaded interface `Lhtd[Tc]`.
///
/// # Errors
///
/// A [`LayerError`] describing the first disagreeing behavior.
pub fn check_multithreaded_linking(
    threads: &[Pid],
    client: &ccal_core::refine::ClientProgram,
    contexts: &[ccal_core::env::EnvContext],
) -> Result<Obligation, LayerError> {
    use ccal_core::calculus::Rule;
    let m = sched_module()?;
    let layer = CertifiedLayer {
        underlay: sched_underlay(),
        module: m,
        overlay: sched_overlay(),
        relation: r_sched_relation(),
        focused: threads.iter().copied().collect(),
        certificate: ccal_core::calculus::Certificate::new(),
    };
    let mut ob =
        ccal_core::refine::check_contextual_refinement(&layer, client, contexts, 200_000)?;
    ob.rule = Rule::MultithreadLink;
    ob.description = format!("Lbtd[c] ≤ Lhtd[c][Tc] on {} threads", threads.len());
    Ok(ob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_core::contexts::ContextGen;
    use std::sync::Arc;

    fn contexts(q: QId) -> Vec<ccal_core::env::EnvContext> {
        ContextGen::new(vec![Pid(0), Pid(1)])
            .with_player(Pid(1), Arc::new(WakerEnvPlayer::new(Pid(1), q, 2)))
            .with_schedule_len(3)
            .contexts()
    }

    #[test]
    fn sleepers_replay_fifo() {
        let q = QId(5);
        let log = Log::from_events([
            Event::new(Pid(0), EventKind::Sleep(q, Loc(0))),
            Event::new(Pid(1), EventKind::Sleep(q, Loc(0))),
            Event::new(Pid(2), EventKind::Wakeup(q)),
        ]);
        assert_eq!(replay_sleepers(&log, q), vec![Pid(1)]);
        assert!(is_sleeping(&log, q, Pid(1)));
        assert!(!is_sleeping(&log, q, Pid(0)));
    }

    #[test]
    fn scheduler_certifies() {
        let q = QId(5);
        let layer = certify_scheduler(Pid(0), q, Loc(9), contexts(q)).unwrap();
        assert!(layer.certificate.total_cases() > 0);
        assert_eq!(layer.relation.name(), "Rsched");
        // The module really is mixed C + assembly.
        assert!(layer.module.get("cswitch").is_some());
        assert_eq!(
            layer.module.get("cswitch").unwrap().lang,
            ccal_core::module::Lang::Asm
        );
        assert_eq!(
            layer.module.get("yield").unwrap().lang,
            ccal_core::module::Lang::C
        );
    }

    #[test]
    fn multithreaded_linking_holds_for_yield_programs() {
        let mut client = ccal_core::refine::ClientProgram::new();
        client.insert(Pid(0), vec![("yield".to_owned(), vec![]); 2]);
        client.insert(Pid(1), vec![("yield".to_owned(), vec![]); 2]);
        let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
            .with_schedule_len(3)
            .contexts();
        let ob = check_multithreaded_linking(&[Pid(0), Pid(1)], &client, &contexts).unwrap();
        assert!(ob.cases_checked > 0);
        assert_eq!(ob.rule, ccal_core::calculus::Rule::MultithreadLink);
    }

    #[test]
    fn sleep_wakeup_round_trip_across_threads() {
        // Thread 0 sleeps; thread 1 wakes it. Run concurrently on the
        // implementation machine.
        use ccal_core::conc::ConcurrentMachine;
        use ccal_core::id::PidSet;
        use std::collections::BTreeMap;
        let m = sched_module().unwrap();
        let iface = m.install(&sched_underlay()).unwrap();
        let env = ccal_core::env::EnvContext::new(Arc::new(
            ccal_core::strategy::RoundRobinScheduler::over_domain(2),
        ));
        let machine =
            ConcurrentMachine::new(iface, PidSet::from_pids([Pid(0), Pid(1)]), env);
        let mut programs = BTreeMap::new();
        programs.insert(
            Pid(0),
            vec![
                ("acq".to_owned(), vec![Val::Loc(Loc(9))]),
                ("sleep".to_owned(), vec![Val::Loc(Loc(5)), Val::Loc(Loc(9))]),
            ],
        );
        programs.insert(
            Pid(1),
            vec![
                ("yield".to_owned(), vec![]),
                ("wakeup".to_owned(), vec![Val::Loc(Loc(5))]),
            ],
        );
        let out = machine.run(&programs).unwrap();
        assert!(!is_sleeping(&out.log, QId(5), Pid(0)), "thread 0 was woken");
        // The wakeup returned thread 0's id and pushed it to the pendq.
        assert_eq!(out.rets[&Pid(1)][1], Val::Int(0));
    }
}
