//! The shared queue object: lock-wrapped queue operations lifted to an
//! atomic interface (§4.2).
//!
//! "To implement the atomic queue object, we simply wrap the local queue
//! operations with lock acquire and release statements" (§6). The
//! implementation [`SHAREDQ_SOURCE`] runs over the *atomic lock interface*
//! `L1` — reusing the certified ticket (or MCS) lock — plus the in-critical
//! queue primitives `enq_t`/`deq_t`, which are exactly `σ_deQ_t` of §4.2:
//! they check lock ownership through the replayed log and get stuck
//! otherwise. The overlay exposes the atomic events `c.enQ(q,v)` /
//! `c.deQ(q)`; the relation [`rq_relation`] erases the lock events, as in
//! the paper's `R_lock` "merging two queue-related lock events into a
//! single event `c.deQ`".

use ccal_core::calculus::{check_fun, CertifiedLayer, CheckOptions, LayerError};
use ccal_core::event::{Event, EventKind};
use ccal_core::id::{Loc, Pid, QId};
use ccal_core::layer::{LayerInterface, PrimSpec};
use ccal_core::log::Log;
use ccal_core::machine::MachineError;
use ccal_core::replay::{deq_result, replay_atomic_lock};
use ccal_core::sim::SimRelation;
use ccal_core::strategy::{Strategy, StrategyMove};
use ccal_core::val::Val;

use crate::ticket::{holds_atomic_lock, lock_interface};

/// The ClightX source of the shared queue module: local queue operations
/// wrapped with the certified lock (Fig. 1's shared queues; §4.2). The
/// queue at location `q` is protected by the lock at the same location.
pub const SHAREDQ_SOURCE: &str = r#"
void enQ(int q, int v) {
    acq(q);
    enq_t(q, v);
    rel(q);
}
int deQ(int q) {
    acq(q);
    int v = deq_t(q);
    rel(q);
    return v;
}
"#;

fn arg_loc(args: &[Val]) -> Result<Loc, MachineError> {
    args.first()
        .ok_or_else(|| MachineError::Stuck("queue primitive needs a location".into()))?
        .as_loc()
        .map_err(MachineError::from)
}

fn require_lock(ctx: &ccal_core::layer::PrimCtx<'_>, q: Loc) -> Result<(), MachineError> {
    if replay_atomic_lock(ctx.log, q)? == Some(ctx.pid) {
        Ok(())
    } else {
        // "if the lock of queue i is held ... | _ => None (*get stuck*)"
        // — σ_deQ_t, §4.2.
        Err(MachineError::Stuck(format!(
            "queue op on {q} by {} without holding its lock",
            ctx.pid
        )))
    }
}

/// The underlay of the shared queue: the atomic lock interface `L1`
/// extended with the in-critical queue operations.
pub fn sharedq_underlay() -> LayerInterface {
    let base = lock_interface();
    let mut b = LayerInterface::builder("Lq");
    for name in base.prim_names() {
        if name == "f" || name == "g" {
            continue;
        }
        b = b.prim(base.prim(name).expect("listed").clone());
    }
    b.prim(PrimSpec::atomic_unqueried("enq_t", |ctx, args| {
        let q = arg_loc(args)?;
        require_lock(ctx, q)?;
        let v = args
            .get(1)
            .cloned()
            .ok_or_else(|| MachineError::Stuck("enq_t needs a value".into()))?;
        ctx.emit(EventKind::EnQ(QId(q.0), v));
        Ok(Val::Unit)
    }))
    .prim(PrimSpec::atomic_unqueried("deq_t", |ctx, args| {
        let q = arg_loc(args)?;
        require_lock(ctx, q)?;
        ctx.emit(EventKind::DeQ(QId(q.0)));
        Ok(deq_result(ctx.log, ctx.log.len() - 1))
    }))
    .conditions(base.conditions.clone())
    .critical(holds_atomic_lock)
    .build()
}

/// The atomic shared-queue overlay `Lq_high` (§4.2's lifted interface):
/// single-event `enQ`/`deQ` whose results come from the replayed queue.
pub fn sharedq_overlay() -> LayerInterface {
    LayerInterface::builder("Lq_high")
        .prim(PrimSpec::atomic("enQ", |ctx, args| {
            let q = arg_loc(args)?;
            let v = args
                .get(1)
                .cloned()
                .ok_or_else(|| MachineError::Stuck("enQ needs a value".into()))?;
            ctx.emit(EventKind::EnQ(QId(q.0), v));
            Ok(Val::Unit)
        }))
        .prim(PrimSpec::atomic("deQ", |ctx, args| {
            let q = arg_loc(args)?;
            ctx.emit(EventKind::DeQ(QId(q.0)));
            Ok(deq_result(ctx.log, ctx.log.len() - 1))
        }))
        .build()
}

/// The relation `R_lock` of §4.2 for the queue stack: the wrapping lock
/// events are erased, leaving the atomic queue events.
pub fn rq_relation() -> SimRelation {
    SimRelation::per_event("Rlock", |e| match e.kind {
        EventKind::Acq(_) | EventKind::Rel(_) => vec![],
        _ => vec![e.clone()],
    })
}

/// A well-behaved environment participant for the *underlay*: performs
/// whole `acq • enQ/deQ • rel` bursts (legal at `L1`, where the critical
/// state keeps control), alternating enqueues of `seed`-derived values and
/// dequeues.
#[derive(Debug, Clone)]
pub struct SharedQEnvPlayer {
    pid: Pid,
    q: Loc,
    rounds: u64,
}

impl SharedQEnvPlayer {
    /// Creates a queue contender on queue/lock `q`.
    pub fn new(pid: Pid, q: Loc, rounds: u64) -> Self {
        Self { pid, q, rounds }
    }
}

impl Strategy for SharedQEnvPlayer {
    fn next_move(&self, log: &Log) -> StrategyMove {
        let done = log
            .iter()
            .filter(|e| e.pid == self.pid && matches!(e.kind, EventKind::Acq(b) if b == self.q))
            .count() as u64;
        if done >= self.rounds || replay_atomic_lock(log, self.q) != Ok(None) {
            return StrategyMove::idle();
        }
        let op = if done.is_multiple_of(2) {
            Event::new(
                self.pid,
                EventKind::EnQ(QId(self.q.0), Val::Int(100 + done as i64)),
            )
        } else {
            Event::new(self.pid, EventKind::DeQ(QId(self.q.0)))
        };
        StrategyMove::Emit(vec![
            Event::new(self.pid, EventKind::Acq(self.q)),
            op,
            Event::new(self.pid, EventKind::Rel(self.q)),
        ])
    }

    fn may_emit(&self) -> Option<Vec<EventKind>> {
        // Payload values are irrelevant to independence — only the
        // footprints (lock `q`, queue `q.0`) matter.
        Some(vec![
            EventKind::Acq(self.q),
            EventKind::EnQ(QId(self.q.0), Val::Int(0)),
            EventKind::DeQ(QId(self.q.0)),
            EventKind::Rel(self.q),
        ])
    }

    fn name(&self) -> &str {
        "sharedq-contender"
    }
}

/// Certifies the shared queue: `Lq[pid] ⊢_{Rlock} Mq : Lq_high[pid]`.
///
/// # Errors
///
/// The first failed obligation.
pub fn certify_shared_queue(
    pid: Pid,
    q: Loc,
    contexts: Vec<ccal_core::env::EnvContext>,
) -> Result<CertifiedLayer, LayerError> {
    certify_shared_queue_tuned(pid, q, contexts, ccal_core::par::default_workers(), true)
}

/// [`certify_shared_queue`] with explicit exploration settings — worker
/// count and symmetric-schedule dedup — so differential tests and
/// benchmarks can compare serial and parallel checking of the same layer.
///
/// # Errors
///
/// The first failed obligation.
pub fn certify_shared_queue_tuned(
    pid: Pid,
    q: Loc,
    contexts: Vec<ccal_core::env::EnvContext>,
    workers: usize,
    dedup: bool,
) -> Result<CertifiedLayer, LayerError> {
    let m = ccal_clightx::clightx_module("Mq", SHAREDQ_SOURCE).map_err(|e| {
        LayerError::Machine(MachineError::Stuck(format!("Mq front-end: {e}")))
    })?;
    let opts = CheckOptions::new(contexts)
        .with_workload("enQ", vec![vec![Val::Loc(q), Val::Int(7)]])
        .with_workload("deQ", vec![vec![Val::Loc(q)]])
        // Exercise deQ both on an empty queue and after an enqueue.
        .with_setup("deQ", vec![("enQ".to_owned(), vec![Val::Loc(q), Val::Int(42)])])
        .with_workers(workers)
        .with_dedup(dedup);
    // The overlay has only enQ/deQ; underlay prims acq/rel are not
    // re-exported (they are hidden by the abstraction, as in Fig. 1 where
    // shared queues sit above spinlocks).
    check_fun(&sharedq_underlay(), &m, &sharedq_overlay(), &rq_relation(), pid, &opts)
}

#[cfg(test)]
#[allow(clippy::cloned_ref_to_slice_refs)]
mod tests {
    use super::*;
    use ccal_core::contexts::ContextGen;
    use std::sync::Arc;

    pub(crate) fn contexts(q: Loc) -> Vec<ccal_core::env::EnvContext> {
        ContextGen::new(vec![Pid(0), Pid(1)])
            .with_player(Pid(1), Arc::new(SharedQEnvPlayer::new(Pid(1), q, 2)))
            .with_schedule_len(3)
            .contexts()
    }

    #[test]
    fn shared_queue_certifies() {
        let q = Loc(3);
        let layer = certify_shared_queue(Pid(0), q, contexts(q)).unwrap();
        assert!(layer.certificate.total_cases() > 0);
        assert_eq!(layer.relation.name(), "Rlock");
    }

    #[test]
    fn queue_ops_without_lock_are_stuck() {
        use ccal_core::env::EnvContext;
        use ccal_core::machine::LayerMachine;
        use ccal_core::strategy::RoundRobinScheduler;
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(1)));
        let mut m = LayerMachine::new(sharedq_underlay(), Pid(0), env);
        let err = m
            .call_prim("enq_t", &[Val::Loc(Loc(0)), Val::Int(1)])
            .unwrap_err();
        assert!(matches!(err, MachineError::Stuck(_)));
    }

    #[test]
    fn deq_observes_fifo_under_the_lock() {
        use ccal_core::env::EnvContext;
        use ccal_core::machine::LayerMachine;
        use ccal_core::strategy::RoundRobinScheduler;
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(1)));
        let m = ccal_clightx::clightx_module("Mq", SHAREDQ_SOURCE).unwrap();
        let iface = m.install(&sharedq_underlay()).unwrap();
        let mut machine = LayerMachine::new(iface, Pid(0), env);
        let q = Val::Loc(Loc(0));
        machine.call_prim("enQ", &[q.clone(), Val::Int(1)]).unwrap();
        machine.call_prim("enQ", &[q.clone(), Val::Int(2)]).unwrap();
        assert_eq!(machine.call_prim("deQ", &[q.clone()]).unwrap(), Val::Int(1));
        assert_eq!(machine.call_prim("deQ", &[q.clone()]).unwrap(), Val::Int(2));
        assert_eq!(machine.call_prim("deQ", &[q]).unwrap(), Val::Int(-1));
    }

    #[test]
    fn concurrent_shared_queue_is_linearizable() {
        use ccal_core::id::PidSet;
        use std::collections::BTreeMap;
        let q = Loc(0);
        let m = ccal_clightx::clightx_module("Mq", SHAREDQ_SOURCE).unwrap();
        let iface = m.install(&sharedq_underlay()).unwrap();
        let mut programs = BTreeMap::new();
        programs.insert(
            Pid(0),
            vec![
                ("enQ".to_owned(), vec![Val::Loc(q), Val::Int(10)]),
                ("deQ".to_owned(), vec![Val::Loc(q)]),
            ],
        );
        programs.insert(
            Pid(1),
            vec![
                ("enQ".to_owned(), vec![Val::Loc(q), Val::Int(20)]),
                ("deQ".to_owned(), vec![Val::Loc(q)]),
            ],
        );
        let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
            .with_schedule_len(4)
            .contexts();
        let ob = ccal_verifier::check_linearizability(
            &iface,
            &PidSet::from_pids([Pid(0), Pid(1)]),
            &programs,
            &rq_relation(),
            &*ccal_verifier::fifo_history_validator("deQ"),
            &contexts,
            100_000,
        )
        .unwrap();
        assert!(ob.cases_checked > 0);
    }
}
