//! The ticket-lock certified layer stack (§2, §4.1, Figs. 3/10).
//!
//! The full derivation of Fig. 5, executable:
//!
//! 1. **Bottom interface `L0`** ([`l0_interface`]): the CPU-local machine
//!    interface with the hardware ticket primitives `fai_t`/`get_n`/
//!    `inc_n`/`hold` (plus the client primitives `f`/`g` of Fig. 3).
//! 2. **`M1`** ([`M1_SOURCE`]): the ClightX ticket lock of Fig. 3/10,
//!    compiled and validated by CompCertX.
//! 3. **Fun-lift to `L′1`** ([`lock_low_interface`]): the strategies
//!    `φ′_acq`/`φ′_rel` of §2 — still exposing the spin loop.
//! 4. **Log-lift to `L1`** ([`lock_interface`]): the *atomic* interface
//!    whose `acq` produces the single event `i.acq`, related by the
//!    simulation relation [`r1_relation`] ("mapping events `i.acq` to
//!    `i.hold`, `i.rel` to `i.inc_n` and other lock-related events to
//!    empty ones", §2).
//! 5. **`M2`/`foo`** ([`M2_SOURCE`], [`l2_interface`], [`r2_relation`]):
//!    the client layer of Fig. 3, whose atomic `foo` abstracts the whole
//!    `acq; f(); g(); rel` critical section.
//!
//! [`certify_ticket_stack`] discharges every obligation and returns the
//! composed certified layers.

use ccal_core::calculus::{
    check_fun, check_iface_refinement, vcomp, weaken, CertifiedLayer, CheckOptions,
    IfaceRefinement, LayerError,
};
use ccal_core::event::{declare_prim_footprint, Event, EventKind, PrimFootprint};
use ccal_core::id::{Loc, Pid};
use ccal_core::layer::{LayerInterface, PrimCtx, PrimRun, PrimSpec, PrimStep};
use ccal_core::log::Log;
use ccal_core::machine::MachineError;
use ccal_core::module::Module;
use ccal_core::rely::{Conditions, Invariant, RelyGuarantee};
use ccal_core::replay::{my_ticket, replay_atomic_lock, replay_ticket};
use ccal_core::sim::SimRelation;
use ccal_core::strategy::{Strategy, StrategyMove};
use ccal_core::val::Val;
use ccal_machine::lx86::{in_critical_l0, lx86_interface};

/// The ClightX source of module `M1` — the ticket lock of Figs. 3 and 10.
pub const M1_SOURCE: &str = r#"
void acq(int b) {
    int my_t = fai_t(b);
    while (get_n(b) != my_t) {}
    hold(b);
}
void rel(int b) {
    inc_n(b);
}
"#;

/// The ClightX source of module `M2` — the client layer of Fig. 3.
pub const M2_SOURCE: &str = r#"
void foo(int b) {
    acq(b);
    f();
    g();
    rel(b);
}
"#;

/// Declares the client primitives' footprints. `f`/`g` take no location
/// arguments and touch no replayed shared state (every replay function
/// and invariant ignores them; `R2` buffers them per-pid), so under
/// [`PrimFootprint::Args`] their events carry the *empty* footprint and
/// commute with everything but the schedule. `foo` acts only on the lock
/// cell named by its `Val::Loc` argument.
pub fn declare_client_footprints() {
    declare_prim_footprint("f", PrimFootprint::Args);
    declare_prim_footprint("g", PrimFootprint::Args);
    declare_prim_footprint("foo", PrimFootprint::Args);
}

fn f_prim() -> PrimSpec {
    declare_client_footprints();
    PrimSpec::atomic("f", |ctx, _| {
        ctx.emit(EventKind::Prim("f".into(), vec![]));
        Ok(Val::Unit)
    })
}

fn g_prim() -> PrimSpec {
    PrimSpec::atomic("g", |ctx, _| {
        // g runs inside the critical section right after f; the critical
        // state suppresses its query point there (§2).
        ctx.emit(EventKind::Prim("g".into(), vec![]));
        Ok(Val::Unit)
    })
}

/// The per-participant ticket-protocol invariant: on every lock location,
/// each participant's events follow `FAI_t → get_n* → hold → inc_n`
/// (release from idle is tolerated, matching the hardware's totality).
/// Used as both rely and guarantee so that parallel composition's
/// compatibility is discharged structurally.
pub fn ticket_protocol_invariant() -> Invariant {
    Invariant::new("ticket-protocol", |pid: Pid, log: &Log| {
        use std::collections::BTreeMap;
        #[derive(PartialEq, Clone, Copy)]
        enum St {
            Idle,
            Ticketed,
            Held,
        }
        let mut st: BTreeMap<Loc, St> = BTreeMap::new();
        for e in log.iter().filter(|e| e.pid == pid) {
            match e.kind {
                EventKind::FaiT(b) => {
                    if *st.get(&b).unwrap_or(&St::Idle) != St::Idle {
                        return false;
                    }
                    st.insert(b, St::Ticketed);
                }
                EventKind::GetN(b)
                    if *st.get(&b).unwrap_or(&St::Idle) != St::Ticketed => {
                        return false;
                    }
                EventKind::Hold(b) => {
                    if *st.get(&b).unwrap_or(&St::Idle) != St::Ticketed {
                        return false;
                    }
                    st.insert(b, St::Held);
                }
                EventKind::IncN(b) => {
                    st.insert(b, St::Idle);
                }
                _ => {}
            }
        }
        true
    })
}

/// The atomic lock protocol invariant: each participant's `acq`/`rel`
/// events are well-bracketed per location.
pub fn atomic_lock_protocol_invariant() -> Invariant {
    Invariant::new("atomic-lock-protocol", |pid: Pid, log: &Log| {
        use std::collections::BTreeSet;
        let mut held: BTreeSet<Loc> = BTreeSet::new();
        for e in log.iter().filter(|e| e.pid == pid) {
            match e.kind {
                EventKind::Acq(b)
                    if !held.insert(b) => {
                        return false;
                    }
                EventKind::Rel(b) => {
                    held.remove(&b);
                }
                _ => {}
            }
        }
        true
    })
}

fn ticket_conditions() -> RelyGuarantee {
    let c = Conditions::none().with(ticket_protocol_invariant());
    RelyGuarantee::new(c.clone(), c)
}

fn atomic_conditions() -> RelyGuarantee {
    let c = Conditions::none().with(atomic_lock_protocol_invariant());
    RelyGuarantee::new(c.clone(), c)
}

/// The bottom interface `L0` of the ticket stack: the CPU-local machine
/// interface (push/pull + ticket hardware primitives) extended with the
/// Fig. 3 client primitives `f` and `g`.
pub fn l0_interface() -> LayerInterface {
    let base = lx86_interface();
    let mut b = LayerInterface::builder("L0");
    for name in base.prim_names() {
        b = b.prim(base.prim(name).expect("listed prim").clone());
    }
    b.prim(f_prim())
        .prim(g_prim())
        .conditions(ticket_conditions())
        .critical(in_critical_l0)
        .build()
}

fn arg_loc(args: &[Val]) -> Result<Loc, MachineError> {
    args.first()
        .ok_or_else(|| MachineError::Stuck("lock primitive needs a location".into()))?
        .as_loc()
        .map_err(MachineError::from)
}

/// The `φ′_acq` strategy of §2: fetch a ticket, spin on `get_n` (querying
/// the environment between probes), then announce with `hold`.
#[derive(Clone)]
struct PhiAcqLow {
    args: Vec<Val>,
    phase: u8,
    ticket: u64,
}

impl PrimRun for PhiAcqLow {
    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        Some(Box::new(self.clone()))
    }

    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        let b = arg_loc(&self.args)?;
        match self.phase {
            0 => {
                // Query point before the shared FAI.
                self.phase = 1;
                Ok(PrimStep::Query)
            }
            1 => {
                ctx.emit(EventKind::FaiT(b));
                self.ticket = my_ticket(ctx.log, b, ctx.pid).expect("just fetched");
                self.phase = 2;
                Ok(PrimStep::Query)
            }
            2 => {
                ctx.emit(EventKind::GetN(b));
                if replay_ticket(ctx.log, b).serving == self.ticket {
                    // Served: one more query point precedes the hold move
                    // (the `?E, !i.hold` edge of the §2 automaton).
                    self.phase = 3;
                }
                Ok(PrimStep::Query)
            }
            _ => {
                ctx.emit(EventKind::Hold(b));
                Ok(PrimStep::Done(Val::Unit))
            }
        }
    }
}

/// The fun-lifted interface `L′1` of §2: `acq`/`rel` as the low-level
/// strategies `φ′_acq`/`φ′_rel` (spin loop still visible), plus the
/// pass-through client primitives.
pub fn lock_low_interface() -> LayerInterface {
    LayerInterface::builder("L1'")
        .prim(PrimSpec::strategy("acq", true, |_pid, args| {
            Box::new(PhiAcqLow {
                args,
                phase: 0,
                ticket: 0,
            })
        }))
        .prim(PrimSpec::atomic("rel", |ctx, args| {
            let b = arg_loc(args)?;
            ctx.emit(EventKind::IncN(b));
            Ok(Val::Unit)
        }))
        .prim(f_prim())
        .prim(g_prim())
        .conditions(ticket_conditions())
        .critical(in_critical_l0)
        .build()
}

/// Which atomic locks `pid` currently holds, per the `acq`/`rel` events.
pub fn holds_atomic_lock(pid: Pid, log: &Log) -> bool {
    use std::collections::BTreeSet;
    let mut held: BTreeSet<Loc> = BTreeSet::new();
    for e in log.iter().filter(|e| e.pid == pid) {
        match e.kind {
            EventKind::Acq(b) | EventKind::AcqQ(b) => {
                held.insert(b);
            }
            EventKind::Rel(b) | EventKind::RelQ(b) => {
                held.remove(&b);
            }
            _ => {}
        }
    }
    !held.is_empty()
}

/// The `φ_acq` strategy of the atomic interface `L1`: query the
/// environment until the lock is free (the rely guarantees holders
/// release), then take it in one atomic event and enter the critical
/// state.
#[derive(Clone)]
struct PhiAcqAtomic {
    args: Vec<Val>,
    queried: bool,
}

impl PrimRun for PhiAcqAtomic {
    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        Some(Box::new(self.clone()))
    }

    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        let b = arg_loc(&self.args)?;
        if !self.queried {
            self.queried = true;
            return Ok(PrimStep::Query);
        }
        if replay_atomic_lock(ctx.log, b)?.is_none() {
            ctx.emit(EventKind::Acq(b));
            Ok(PrimStep::Done(Val::Unit))
        } else {
            Ok(PrimStep::Query)
        }
    }
}

/// The log-lifted atomic lock interface `L1` of §2: `acq` and `rel` are
/// single-event atomic primitives; holding the lock is the critical state.
pub fn lock_interface() -> LayerInterface {
    LayerInterface::builder("L1")
        .prim(PrimSpec::strategy("acq", true, |_pid, args| {
            Box::new(PhiAcqAtomic {
                args,
                queried: false,
            })
        }))
        .prim(PrimSpec::atomic("rel", |ctx, args| {
            let b = arg_loc(args)?;
            ctx.emit(EventKind::Rel(b));
            Ok(Val::Unit)
        }))
        .prim(f_prim())
        .prim(g_prim())
        .conditions(atomic_conditions())
        .critical(holds_atomic_lock)
        .build()
}

/// The relation `R1` of §2: `hold ↦ acq`, `inc_n ↦ rel`, other
/// lock-related events erased, everything else kept.
pub fn r1_relation() -> SimRelation {
    SimRelation::per_event("R1", |e| match e.kind {
        EventKind::FaiT(_) | EventKind::GetN(_) => vec![],
        EventKind::Hold(b) => vec![Event::new(e.pid, EventKind::Acq(b))],
        EventKind::IncN(b) => vec![Event::new(e.pid, EventKind::Rel(b))],
        _ => vec![e.clone()],
    })
}

/// The top client interface `L2` of Fig. 3: the single atomic primitive
/// `foo`, producing the event `i.foo`.
pub fn l2_interface() -> LayerInterface {
    declare_client_footprints();
    LayerInterface::builder("L2")
        .prim(PrimSpec::strategy("foo", true, |_pid, args| {
            Box::new(PhiFooAtomic {
                args,
                queried: false,
            })
        }))
        .conditions(RelyGuarantee::none())
        .build()
}

#[derive(Clone)]
struct PhiFooAtomic {
    args: Vec<Val>,
    queried: bool,
}

impl PrimRun for PhiFooAtomic {
    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        Some(Box::new(self.clone()))
    }

    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        let b = arg_loc(&self.args)?;
        if !self.queried {
            self.queried = true;
            return Ok(PrimStep::Query);
        }
        if replay_atomic_lock(ctx.log, b)?.is_none() {
            ctx.emit(EventKind::Prim("foo".into(), vec![Val::Loc(b)]));
            Ok(PrimStep::Done(Val::Unit))
        } else {
            Ok(PrimStep::Query)
        }
    }
}

/// The relation `R2` of §2: the critical section `i.acq • i.f • i.g •
/// i.rel` collapses to the single event `i.foo`. Implemented as a
/// whole-log abstraction: per participant, an open `acq` buffers `f`/`g`
/// until the matching `rel`, which emits `foo`.
pub fn r2_relation() -> SimRelation {
    SimRelation::whole_log("R2", |log: &Log| {
        use std::collections::BTreeMap;
        let mut open: BTreeMap<Pid, (Loc, Vec<String>)> = BTreeMap::new();
        let mut out = Log::new();
        for e in log.iter() {
            match &e.kind {
                EventKind::Acq(b) => {
                    if open.insert(e.pid, (*b, Vec::new())).is_some() {
                        return None;
                    }
                }
                EventKind::Prim(name, _) if name == "f" || name == "g" => {
                    match open.get_mut(&e.pid) {
                        Some((_, inner)) => inner.push(name.clone()),
                        None => return None,
                    }
                }
                EventKind::Rel(b) => match open.remove(&e.pid) {
                    Some((open_b, inner)) if open_b == *b && inner == ["f", "g"] => {
                        out.append(Event::new(
                            e.pid,
                            EventKind::Prim("foo".into(), vec![Val::Loc(*b)]),
                        ));
                    }
                    _ => return None,
                },
                _ => out.append(e.clone()),
            }
        }
        if open.is_empty() {
            Some(out)
        } else {
            None
        }
    })
}

/// A well-behaved contending environment participant for the ticket lock:
/// as a pure function of the log it acquires the lock (FAI → hold when
/// served) up to `rounds` times and always releases on the turn after
/// taking it — satisfying the rely condition that "the held locks will
/// eventually be released" (§2).
#[derive(Debug, Clone)]
pub struct TicketEnvPlayer {
    pid: Pid,
    b: Loc,
    rounds: u64,
}

impl TicketEnvPlayer {
    /// Creates a contender on lock `b` that acquires `rounds` times.
    pub fn new(pid: Pid, b: Loc, rounds: u64) -> Self {
        Self { pid, b, rounds }
    }
}

impl Strategy for TicketEnvPlayer {
    fn next_move(&self, log: &Log) -> StrategyMove {
        // Reconstruct my lock state from the log.
        let mut fai_count = 0_u64;
        let mut state = 0_u8; // 0 idle, 1 ticketed, 2 held
        for e in log.iter().filter(|e| e.pid == self.pid) {
            match e.kind {
                EventKind::FaiT(b) if b == self.b => {
                    fai_count += 1;
                    state = 1;
                }
                EventKind::Hold(b) if b == self.b => state = 2,
                EventKind::IncN(b) if b == self.b => state = 0,
                _ => {}
            }
        }
        match state {
            2 => StrategyMove::Emit(vec![Event::new(self.pid, EventKind::IncN(self.b))]),
            1 => {
                let mine = my_ticket(log, self.b, self.pid).expect("ticketed");
                if replay_ticket(log, self.b).serving == mine {
                    StrategyMove::Emit(vec![Event::new(self.pid, EventKind::Hold(self.b))])
                } else {
                    StrategyMove::idle()
                }
            }
            _ if fai_count < self.rounds => {
                StrategyMove::Emit(vec![Event::new(self.pid, EventKind::FaiT(self.b))])
            }
            _ => StrategyMove::idle(),
        }
    }

    fn may_emit(&self) -> Option<Vec<EventKind>> {
        // Every move touches only the ticket state of lock `self.b`; the
        // decisions depend only on this pid's own projection of the log
        // plus the replayed state of `self.b`, so the strategy is local to
        // these kinds' footprints as `Strategy::may_emit` requires.
        Some(vec![
            EventKind::FaiT(self.b),
            EventKind::Hold(self.b),
            EventKind::IncN(self.b),
        ])
    }

    fn name(&self) -> &str {
        "ticket-contender"
    }
}

/// The atomic-level image of [`TicketEnvPlayer`]: acquires with a single
/// `acq` event when the lock is free, releases on the next turn.
#[derive(Debug, Clone)]
pub struct AtomicLockEnvPlayer {
    pid: Pid,
    b: Loc,
    rounds: u64,
}

impl AtomicLockEnvPlayer {
    /// Creates an atomic-level contender on lock `b`.
    pub fn new(pid: Pid, b: Loc, rounds: u64) -> Self {
        Self { pid, b, rounds }
    }
}

impl Strategy for AtomicLockEnvPlayer {
    fn next_move(&self, log: &Log) -> StrategyMove {
        let mut acqs = 0_u64;
        let mut holding = false;
        for e in log.iter().filter(|e| e.pid == self.pid) {
            match e.kind {
                EventKind::Acq(b) if b == self.b => {
                    acqs += 1;
                    holding = true;
                }
                EventKind::Rel(b) if b == self.b => holding = false,
                _ => {}
            }
        }
        if holding {
            return StrategyMove::Emit(vec![Event::new(self.pid, EventKind::Rel(self.b))]);
        }
        if acqs < self.rounds && replay_atomic_lock(log, self.b) == Ok(None) {
            return StrategyMove::Emit(vec![Event::new(self.pid, EventKind::Acq(self.b))]);
        }
        StrategyMove::idle()
    }

    fn may_emit(&self) -> Option<Vec<EventKind>> {
        Some(vec![EventKind::Acq(self.b), EventKind::Rel(self.b)])
    }

    fn name(&self) -> &str {
        "atomic-lock-contender"
    }
}

/// An environment participant whose critical sections are `foo`-shaped
/// (`acq • f • g • rel` in one atomic burst — legal at `L1`, where the
/// critical state keeps control): the environment the client layer's rely
/// assumes, since every participant at this level runs `foo` (Fig. 3).
#[derive(Debug, Clone)]
pub struct FooEnvPlayer {
    pid: Pid,
    b: Loc,
    rounds: u64,
}

impl FooEnvPlayer {
    /// Creates a `foo`-shaped contender on lock `b`.
    pub fn new(pid: Pid, b: Loc, rounds: u64) -> Self {
        declare_client_footprints();
        Self { pid, b, rounds }
    }
}

impl Strategy for FooEnvPlayer {
    fn next_move(&self, log: &Log) -> StrategyMove {
        let done = log
            .iter()
            .filter(|e| e.pid == self.pid && matches!(e.kind, EventKind::Acq(b) if b == self.b))
            .count() as u64;
        if done < self.rounds && replay_atomic_lock(log, self.b) == Ok(None) {
            StrategyMove::Emit(vec![
                Event::new(self.pid, EventKind::Acq(self.b)),
                Event::prim(self.pid, "f", vec![]),
                Event::prim(self.pid, "g", vec![]),
                Event::new(self.pid, EventKind::Rel(self.b)),
            ])
        } else {
            StrategyMove::idle()
        }
    }

    fn may_emit(&self) -> Option<Vec<EventKind>> {
        // With the declared footprints ([`declare_client_footprints`]),
        // `f`/`g` carry the empty footprint and the whole alphabet is
        // local to lock `self.b`, so this declaration licenses reductions
        // against players on disjoint state. The decision above reads only
        // this pid's projection plus the replayed lock `self.b`.
        Some(vec![
            EventKind::Acq(self.b),
            Event::prim(self.pid, "f", vec![]).kind,
            Event::prim(self.pid, "g", vec![]).kind,
            EventKind::Rel(self.b),
        ])
    }

    fn name(&self) -> &str {
        "foo-contender"
    }
}

/// The fully certified ticket stack: all layers, relations and
/// certificates of the Fig. 5 pipeline for one participant.
#[derive(Debug, Clone)]
pub struct TicketStack {
    /// `L0[i] ⊢_id M1 : L′1[i]` — the fun-lift.
    pub fun_lift: CertifiedLayer,
    /// `L′1[i] ≤_{R1} L1[i]` — the log-lift.
    pub log_lift: IfaceRefinement,
    /// `L0[i] ⊢_{R1} M1 : L1[i]` — the weakened lock layer.
    pub lock_layer: CertifiedLayer,
    /// `L1[i] ⊢_{R2} M2 : L2[i]` — the client layer.
    pub client_layer: CertifiedLayer,
    /// `L0[i] ⊢_{R1∘R2} M1 ⊕ M2 : L2[i]` — the vertical composition.
    pub full_stack: CertifiedLayer,
}

/// Certifies the whole ticket stack for participant `pid` on lock `b`,
/// checking every obligation of Fig. 5's pipeline over the given contexts.
///
/// # Errors
///
/// The first failed obligation, as a [`LayerError`].
pub fn certify_ticket_stack(
    pid: Pid,
    b: Loc,
    contexts_low: Vec<ccal_core::env::EnvContext>,
    contexts_atomic: Vec<ccal_core::env::EnvContext>,
) -> Result<TicketStack, LayerError> {
    certify_ticket_stack_tuned(
        pid,
        b,
        contexts_low,
        contexts_atomic,
        ccal_core::par::default_workers(),
        true,
    )
}

/// [`certify_ticket_stack`] with explicit exploration settings — worker
/// count and symmetric-schedule dedup — so differential tests and
/// benchmarks can compare serial and parallel checking of the same stack.
///
/// # Errors
///
/// The first failed obligation, as a [`LayerError`].
pub fn certify_ticket_stack_tuned(
    pid: Pid,
    b: Loc,
    contexts_low: Vec<ccal_core::env::EnvContext>,
    contexts_atomic: Vec<ccal_core::env::EnvContext>,
    workers: usize,
    dedup: bool,
) -> Result<TicketStack, LayerError> {
    let m1 = ccal_clightx::clightx_module("M1", M1_SOURCE).map_err(|e| {
        LayerError::Machine(MachineError::Stuck(format!("M1 front-end: {e}")))
    })?;
    let m2 = ccal_clightx::clightx_module("M2", M2_SOURCE).map_err(|e| {
        LayerError::Machine(MachineError::Stuck(format!("M2 front-end: {e}")))
    })?;
    let lock_args = vec![vec![Val::Loc(b)]];
    let opts_low = CheckOptions::new(contexts_low)
        .with_workload("acq", lock_args.clone())
        .with_workload("rel", lock_args.clone())
        .with_workers(workers)
        .with_dedup(dedup);
    let opts_atomic = CheckOptions::new(contexts_atomic)
        .with_workload("acq", lock_args.clone())
        .with_workload("rel", lock_args.clone())
        .with_workload("foo", lock_args.clone())
        .with_workers(workers)
        .with_dedup(dedup);

    // Fun-lift: L0 ⊢_id M1 : L′1.
    let fun_lift = check_fun(
        &l0_interface(),
        &m1,
        &lock_low_interface(),
        &SimRelation::identity(),
        pid,
        &opts_low,
    )?;
    // Log-lift: L′1 ≤_R1 L1.
    let log_lift = check_iface_refinement(
        &lock_low_interface(),
        &lock_interface(),
        &r1_relation(),
        pid,
        &opts_low,
    )?;
    // Weaken: L0 ⊢_{id∘R1} M1 : L1.
    let lock_layer = weaken(None, &fun_lift, Some(&log_lift))?;
    // Client layer: L1 ⊢ M2 : L2 via R2.
    let client_layer = check_fun(
        &lock_interface(),
        &m2,
        &l2_interface(),
        &r2_relation(),
        pid,
        &opts_atomic,
    )?;
    // Vertical composition: L0 ⊢ M1 ⊕ M2 : L2.
    let full_stack = vcomp(&lock_layer, &client_layer)?;
    Ok(TicketStack {
        fun_lift,
        log_lift,
        lock_layer,
        client_layer,
        full_stack,
    })
}

/// The module `M1` as a core module (interpreted C), for callers that
/// need it without certifying the whole stack.
///
/// # Errors
///
/// Front-end errors from parsing/checking the embedded source.
pub fn m1_module() -> Result<Module, ccal_clightx::CError> {
    ccal_clightx::clightx_module("M1", M1_SOURCE)
}

#[cfg(test)]
#[allow(clippy::cloned_ref_to_slice_refs)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ccal_core::contexts::ContextGen;
    use ccal_core::env::EnvContext;

    #[test]
    fn declared_footprints_make_the_foo_contender_independent_of_scratch() {
        use ccal_core::por::PidIndependence;
        use ccal_core::strategy::{ScratchPlayer, Strategy};
        use std::collections::BTreeMap;
        declare_client_footprints();
        // `f`/`g` carry the empty footprint: independent of a scratch push.
        let push = EventKind::Push(Loc(100), Val::Int(0));
        let f = Event::prim(Pid(1), "f", vec![]).kind;
        assert!(EventKind::independent_kinds(&f, &push));
        // An undeclared prim stays global and dependent.
        let alien = EventKind::Prim("test_fp_undeclared_ticket".into(), vec![]);
        assert!(!EventKind::independent_kinds(&alien, &push));
        // At the player level: the foo contender now commutes with the
        // scratch threads, so the sleep-set reduction may prune their
        // interleavings.
        let domain = [Pid(0), Pid(1), Pid(2)];
        let mut players: BTreeMap<Pid, Arc<dyn Strategy>> = BTreeMap::new();
        players.insert(Pid(1), Arc::new(FooEnvPlayer::new(Pid(1), Loc(0), 1)));
        players.insert(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), Loc(100))));
        let indep = PidIndependence::from_players(&domain, &players);
        assert!(indep.independent(Pid(1), Pid(2)));
        // The focused pid declares no alphabet and stays dependent.
        assert!(!indep.independent(Pid(0), Pid(1)));
    }

    pub(crate) fn low_contexts(b: Loc) -> Vec<EnvContext> {
        ContextGen::new(vec![Pid(0), Pid(1)])
            .with_player(Pid(1), Arc::new(TicketEnvPlayer::new(Pid(1), b, 2)))
            .with_schedule_len(3)
            .contexts()
    }

    pub(crate) fn atomic_contexts(b: Loc) -> Vec<EnvContext> {
        ContextGen::new(vec![Pid(0), Pid(1)])
            .with_player(Pid(1), Arc::new(FooEnvPlayer::new(Pid(1), b, 2)))
            .with_schedule_len(3)
            .contexts()
    }

    #[test]
    fn full_stack_certifies() {
        let b = Loc(0);
        let stack =
            certify_ticket_stack(Pid(0), b, low_contexts(b), atomic_contexts(b)).unwrap();
        assert!(stack.full_stack.certificate.total_cases() > 0);
        assert!(stack.full_stack.judgment().contains("L0"));
        assert!(stack.full_stack.judgment().contains("L2"));
        assert_eq!(stack.full_stack.relation.name(), "id ∘ R1 ∘ R2");
    }

    #[test]
    fn r1_maps_the_walkthrough_events() {
        let b = Loc(0);
        let lower = Log::from_events([
            Event::new(Pid(1), EventKind::FaiT(b)),
            Event::new(Pid(2), EventKind::FaiT(b)),
            Event::new(Pid(1), EventKind::GetN(b)),
            Event::new(Pid(1), EventKind::Hold(b)),
            Event::new(Pid(1), EventKind::IncN(b)),
        ]);
        let upper = r1_relation().abstracted(&lower).unwrap();
        let expected = Log::from_events([
            Event::new(Pid(1), EventKind::Acq(b)),
            Event::new(Pid(1), EventKind::Rel(b)),
        ]);
        assert_eq!(upper, expected);
    }

    #[test]
    fn r2_collapses_critical_sections() {
        let b = Loc(0);
        let lower = Log::from_events([
            Event::new(Pid(1), EventKind::Acq(b)),
            Event::prim(Pid(1), "f", vec![]),
            Event::prim(Pid(1), "g", vec![]),
            Event::new(Pid(1), EventKind::Rel(b)),
            Event::new(Pid(2), EventKind::Acq(b)),
            Event::prim(Pid(2), "f", vec![]),
            Event::prim(Pid(2), "g", vec![]),
            Event::new(Pid(2), EventKind::Rel(b)),
        ]);
        let upper = r2_relation().abstracted(&lower).unwrap();
        assert_eq!(upper.len(), 2);
        assert!(matches!(&upper[0].kind, EventKind::Prim(n, _) if n == "foo"));
        assert_eq!(upper[0].pid, Pid(1));
        assert_eq!(upper[1].pid, Pid(2));
    }

    #[test]
    fn r2_rejects_torn_critical_sections() {
        let b = Loc(0);
        let torn = Log::from_events([
            Event::new(Pid(1), EventKind::Acq(b)),
            Event::prim(Pid(1), "f", vec![]),
            Event::new(Pid(1), EventKind::Rel(b)),
        ]);
        assert_eq!(r2_relation().abstracted(&torn), None);
    }

    #[test]
    fn protocol_invariant_accepts_legal_and_rejects_illegal() {
        let b = Loc(0);
        let inv = ticket_protocol_invariant();
        let ok = Log::from_events([
            Event::new(Pid(0), EventKind::FaiT(b)),
            Event::new(Pid(0), EventKind::GetN(b)),
            Event::new(Pid(0), EventKind::Hold(b)),
            Event::new(Pid(0), EventKind::IncN(b)),
        ]);
        assert!(inv.holds(Pid(0), &ok));
        let bad = Log::from_events([Event::new(Pid(0), EventKind::Hold(b))]);
        assert!(!inv.holds(Pid(0), &bad));
    }

    #[test]
    fn ticket_env_player_respects_the_protocol() {
        let b = Loc(0);
        let player = TicketEnvPlayer::new(Pid(1), b, 2);
        let mut log = Log::new();
        // Drive the player for a while; its own events must satisfy the
        // protocol invariant at every step.
        for _ in 0..20 {
            if let StrategyMove::Emit(evs) = player.next_move(&log) {
                log.append_all(evs);
            }
            assert!(ticket_protocol_invariant().holds(Pid(1), &log));
        }
        // It completed its two rounds.
        assert_eq!(replay_ticket(&log, b).serving, 2);
    }
}
