//! Tier differential at the checker level: every verification driver —
//! simulation (`check_fun` via the ticket stack), liveness, race
//! freedom, linearizability and sequence refinement — must reach the
//! same verdict, with the same counts and the same first-failure
//! evidence, whether the ClightX bodies run on the bytecode VM or on
//! the tree-walking interpreter. The scenarios are ticket-lock layers
//! whose `acq`/`rel` are real ClightX code (`M1`), exercised across
//! worker counts, POR, and prefix/deep sharing.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use ccal_core::conc::ThreadScript;
use ccal_core::contexts::ContextGen;
use ccal_core::env::EnvContext;
use ccal_core::id::{Loc, Pid, PidSet};
use ccal_core::layer::LayerInterface;
use ccal_core::prefix::BytecodeOverride;
use ccal_core::val::Val;
use ccal_objects::ticket::{
    certify_ticket_stack_tuned, l0_interface, lock_interface, m1_module, r1_relation,
    FooEnvPlayer, TicketEnvPlayer,
};
use ccal_verifier::{
    check_linearizability_tuned, check_liveness_tuned, check_race_freedom_tuned,
    check_sequence_refinement_tuned, lock_history_validator, ticket_bound, OpScript,
};

const B: Loc = Loc(0);

/// The tier override is process-global; serialize every test that flips
/// it so parallel test threads cannot observe each other's tier.
static TIER_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once per tier and asserts the outcomes are identical;
/// returns the (shared) outcome for further assertions.
fn both_tiers<T, F>(f: F) -> T
where
    T: PartialEq + std::fmt::Debug,
    F: Fn() -> T,
{
    let _serial = TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let on = {
        let _tier = BytecodeOverride::force(true);
        f()
    };
    let off = {
        let _tier = BytecodeOverride::force(false);
        f()
    };
    assert_eq!(on, off, "compiled and interpreted tiers diverged");
    on
}

/// The exploration settings the grid sweeps: (workers, por, prefix
/// sharing, deep sharing) — serial baseline, parallel + POR with prefix
/// memoization, and the full snapshot-trie configuration.
const GRID: [(usize, bool, bool, bool); 3] = [
    (1, false, false, false),
    (2, true, true, false),
    (2, true, true, true),
];

fn ticket_iface() -> LayerInterface {
    m1_module()
        .expect("M1 parses")
        .install(&l0_interface())
        .expect("M1 installs over L0")
}

fn liveness_contexts() -> Vec<EnvContext> {
    ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(TicketEnvPlayer::new(Pid(1), B, 2)))
        .with_schedule_len(4)
        .with_max_contexts(16)
        .contexts()
}

#[test]
fn liveness_verdict_is_tier_invariant() {
    let iface = ticket_iface();
    let contexts = liveness_contexts();
    for (workers, por, prefix, deep) in GRID {
        let ob = both_tiers(|| {
            check_liveness_tuned(
                &iface,
                "acq",
                &[Val::Loc(B)],
                Pid(0),
                &contexts,
                ticket_bound(4, 8, 2),
                200_000,
                workers,
                por,
                prefix,
                deep,
            )
            .map_err(|e| e.to_string())
        })
        .expect("acq is starvation-free under the rely");
        assert!(ob.cases_checked > 0);
    }
}

#[test]
fn liveness_failure_evidence_is_tier_invariant() {
    let iface = ticket_iface();
    let contexts = liveness_contexts();
    for (workers, por, prefix, deep) in GRID {
        // Bound 1 is unmeetable: even an uncontended acq takes several
        // scheduling steps. Both tiers must starve at the same point
        // with the same rendered counterexample.
        let err = both_tiers(|| {
            check_liveness_tuned(
                &iface,
                "acq",
                &[Val::Loc(B)],
                Pid(0),
                &contexts,
                1,
                200_000,
                workers,
                por,
                prefix,
                deep,
            )
            .map_err(|e| e.to_string())
        })
        .expect_err("bound 1 must fail");
        assert!(
            err.contains("steps") || err.contains("starvation"),
            "unexpected failure shape: {err}"
        );
    }
}

fn acq_rel_programs() -> BTreeMap<Pid, ThreadScript> {
    let mut programs: BTreeMap<Pid, ThreadScript> = BTreeMap::new();
    for pid in [Pid(0), Pid(1)] {
        programs.insert(
            pid,
            vec![
                ("acq".to_owned(), vec![Val::Loc(B)]),
                ("rel".to_owned(), vec![Val::Loc(B)]),
            ],
        );
    }
    programs
}

fn game_contexts() -> Vec<EnvContext> {
    ContextGen::new(vec![Pid(0), Pid(1)])
        .with_schedule_len(4)
        .with_max_contexts(16)
        .contexts()
}

#[test]
fn race_freedom_verdict_is_tier_invariant() {
    let iface = ticket_iface();
    let focused = PidSet::from_pids([Pid(0), Pid(1)]);
    let programs = acq_rel_programs();
    let contexts = game_contexts();
    for (workers, por, prefix, deep) in GRID {
        let outcome = both_tiers(|| {
            check_race_freedom_tuned(
                &iface,
                &focused,
                &programs,
                &contexts,
                200_000,
                workers,
                por,
                prefix,
                deep,
            )
            .map_err(|e| e.to_string())
        });
        let ob = outcome.expect("ticket acq/rel is race-free");
        assert!(ob.cases_checked > 0);
    }
}

#[test]
fn linearizability_verdict_is_tier_invariant() {
    let iface = ticket_iface();
    let focused = PidSet::from_pids([Pid(0), Pid(1)]);
    let programs = acq_rel_programs();
    let contexts = game_contexts();
    let validator = lock_history_validator();
    for (workers, por, prefix, deep) in GRID {
        let outcome = both_tiers(|| {
            check_linearizability_tuned(
                &iface,
                &focused,
                &programs,
                &r1_relation(),
                &validator,
                &contexts,
                200_000,
                workers,
                por,
                prefix,
                deep,
            )
            .map_err(|e| e.to_string())
        });
        let ob = outcome.expect("ticket histories linearize to lock histories");
        assert!(ob.cases_checked > 0);
    }
}

#[test]
fn sequence_refinement_verdict_is_tier_invariant() {
    let impl_iface = ticket_iface();
    let spec_iface = lock_interface();
    let scripts: Vec<OpScript> = vec![vec![
        ("acq".to_owned(), vec![Val::Loc(B)]),
        ("rel".to_owned(), vec![Val::Loc(B)]),
    ]];
    let contexts = liveness_contexts();
    for (workers, por, prefix, deep) in GRID {
        // The verdict (pass or fail, and if fail: which case, why) must
        // match tier-for-tier; the interesting property is invariance,
        // not the verdict itself.
        let _outcome = both_tiers(|| {
            check_sequence_refinement_tuned(
                &impl_iface,
                &spec_iface,
                &r1_relation(),
                Pid(0),
                &contexts,
                &scripts,
                200_000,
                workers,
                por,
                prefix,
                deep,
            )
            .map_err(|e| e.to_string())
        });
    }
}

#[test]
fn full_ticket_stack_certificate_is_tier_invariant() {
    // The whole Fig. 5 pipeline — two `check_fun` obligations (both with
    // ClightX bodies), the log-lift, weakening and vertical composition —
    // rendered to its Debug form: every obligation count, rule name and
    // layer signature must match across tiers.
    let low = || {
        ContextGen::new(vec![Pid(0), Pid(1)])
            .with_player(Pid(1), Arc::new(TicketEnvPlayer::new(Pid(1), B, 2)))
            .with_schedule_len(3)
            .contexts()
    };
    let atomic = || {
        ContextGen::new(vec![Pid(0), Pid(1)])
            .with_player(Pid(1), Arc::new(FooEnvPlayer::new(Pid(1), B, 2)))
            .with_schedule_len(3)
            .contexts()
    };
    for (workers, dedup) in [(1, false), (2, true)] {
        let rendered = both_tiers(|| {
            certify_ticket_stack_tuned(Pid(0), B, low(), atomic(), workers, dedup)
                .map(|stack| format!("{stack:?}"))
                .map_err(|e| e.to_string())
        });
        let stack = rendered.expect("the ticket stack certifies");
        assert!(stack.contains("Obligation"), "certificate renders: {stack}");
    }
}
