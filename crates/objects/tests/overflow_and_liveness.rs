//! The §4.1 side conditions of the ticket lock, reproduced:
//!
//! * **Overflow**: "we must also handle potential integer overflows for
//!   `t` and `n`. We can prove that, as long as the total number of CPUs
//!   in the machine is less than 2³² (determined by `uint`), the mutual
//!   exclusion property will not be violated even with overflows." We
//!   check the property at a small modulus: with `#CPU ≤ M` wrapped
//!   tickets stay mutually exclusive; with `#CPU > M` a violation is
//!   constructible — the boundary the paper's proof lives on.
//! * **Starvation-freedom**: `acq` terminates within the `n·m·#CPU`
//!   bound under rely-respecting environments, and a lock-hogging
//!   environment is *detected* as starvation.

use std::collections::BTreeMap;
use std::sync::Arc;

use ccal_core::conc::{ConcurrentMachine, ThreadScript};
use ccal_core::contexts::ContextGen;
use ccal_core::env::EnvContext;
use ccal_core::event::{Event, EventKind};
use ccal_core::id::{Loc, Pid, PidSet};
use ccal_core::layer::{LayerInterface, PrimSpec};
use ccal_core::log::Log;
use ccal_core::replay::{my_ticket, replay_ticket};
use ccal_core::strategy::{RoundRobinScheduler, Strategy, StrategyMove};
use ccal_core::val::Val;
use ccal_objects::ticket::{l0_interface, m1_module, TicketEnvPlayer};
use ccal_verifier::{check_liveness, ticket_bound};

const B: Loc = Loc(0);

/// A ticket interface whose counters wrap at modulus `m` — the bounded
/// `uint` of the real implementation, scaled down so the overflow boundary
/// is reachable in a test.
fn wrapped_ticket_interface(m: i64) -> LayerInterface {
    let fai = move |ctx: &mut ccal_core::layer::PrimCtx<'_>,
                    args: &[Val]|
          -> Result<Val, ccal_core::machine::MachineError> {
        let b = args[0].as_loc()?;
        ctx.emit(EventKind::FaiT(b));
        let t = my_ticket(ctx.log, b, ctx.pid).expect("just fetched") as i64;
        Ok(Val::Int(t % m))
    };
    let get_n = move |ctx: &mut ccal_core::layer::PrimCtx<'_>,
                      args: &[Val]|
          -> Result<Val, ccal_core::machine::MachineError> {
        let b = args[0].as_loc()?;
        ctx.emit(EventKind::GetN(b));
        Ok(Val::Int(replay_ticket(ctx.log, b).serving as i64 % m))
    };
    LayerInterface::builder("L0-wrapped")
        .prim(PrimSpec::atomic("fai_w", fai))
        .prim(PrimSpec::atomic("gn_w", get_n))
        .prim(PrimSpec::atomic("inc_n", |ctx, args| {
            let b = args[0].as_loc()?;
            ctx.emit(EventKind::IncN(b));
            Ok(Val::Unit)
        }))
        .prim(PrimSpec::atomic("hold", |ctx, args| {
            let b = args[0].as_loc()?;
            ctx.emit(EventKind::Hold(b));
            Ok(Val::Unit)
        }))
        .critical(ccal_machine::lx86::in_critical_l0)
        .build()
}

const WRAPPED_ACQ: &str = r#"
void acq(int b) {
    int t = fai_w(b);
    while (gn_w(b) != t) {}
    hold(b);
}
void rel(int b) {
    inc_n(b);
}
"#;

/// Scans a log for a ticket-safety violation: a `hold` whose author's
/// *true* (unwrapped) ticket differs from the now-serving counter — an
/// out-of-turn acquisition. On real hardware, where critical sections
/// span time, this is exactly a mutual-exclusion breach; under the layer
/// machine's atomic critical sections it surfaces as queue-jumping.
fn ticket_safety_violated(log: &Log) -> bool {
    for (at, e) in log.iter().enumerate() {
        if let EventKind::Hold(b) = e.kind {
            if b != B {
                continue;
            }
            let prefix = Log::from_events(log.iter().take(at).cloned());
            let serving = replay_ticket(&prefix, B).serving;
            let true_ticket = my_ticket(&prefix, B, e.pid).expect("holder fetched a ticket");
            if true_ticket != serving {
                return true;
            }
        }
    }
    false
}

fn contend(ncpus: u32, modulus: i64, rounds: usize) -> Log {
    let module = ccal_clightx::clightx_module("Mw", WRAPPED_ACQ).expect("parses");
    let iface = module
        .install(&wrapped_ticket_interface(modulus))
        .expect("installs");
    let domain: Vec<Pid> = (0..ncpus).map(Pid).collect();
    let env = EnvContext::new(Arc::new(RoundRobinScheduler::new(domain.clone())));
    let machine = ConcurrentMachine::new(iface, PidSet::from_pids(domain.clone()), env)
        .with_fuel(2_000_000);
    let mut programs: BTreeMap<Pid, ThreadScript> = BTreeMap::new();
    for pid in domain {
        let mut script = ThreadScript::new();
        for _ in 0..rounds {
            script.push(("acq".to_owned(), vec![Val::Loc(B)]));
            script.push(("rel".to_owned(), vec![Val::Loc(B)]));
        }
        programs.insert(pid, script);
    }
    machine.run(&programs).expect("contended run completes").log
}

#[test]
fn wrapped_tickets_stay_exclusive_when_cpus_fit_the_modulus() {
    // #CPU = 3 ≤ M = 4: no two tickets can alias, so mutual exclusion
    // survives wraparound even after many acquisitions.
    let log = contend(3, 4, 4);
    assert!(!ticket_safety_violated(&log), "violation in {log}");
    // The counters really did wrap (more acquisitions than the modulus).
    assert!(replay_ticket(&log, B).next > 4);
}

#[test]
fn overflow_violates_mutual_exclusion_when_cpus_exceed_the_modulus() {
    // #CPU = 3 > M = 2: tickets 0 and 2 alias mod 2, so a waiter can see
    // "its" number while the owner still holds — the exact hazard the
    // paper's #CPU < 2³² side condition excludes.
    let log = contend(3, 2, 2);
    assert!(
        ticket_safety_violated(&log),
        "expected an aliasing violation, log: {log}"
    );
}

/// An environment participant that grabs the ticket lock and never
/// releases — violating the "held locks will eventually be released"
/// rely condition (§2).
#[derive(Debug, Clone)]
struct HogPlayer {
    pid: Pid,
}

impl Strategy for HogPlayer {
    fn next_move(&self, log: &Log) -> StrategyMove {
        let mine = my_ticket(log, B, self.pid);
        match mine {
            None => StrategyMove::Emit(vec![Event::new(self.pid, EventKind::FaiT(B))]),
            Some(t) if replay_ticket(log, B).serving == t => {
                let held = log
                    .iter()
                    .any(|e| e.pid == self.pid && matches!(e.kind, EventKind::Hold(b) if b == B));
                if held {
                    StrategyMove::idle() // never releases
                } else {
                    StrategyMove::Emit(vec![Event::new(self.pid, EventKind::Hold(B))])
                }
            }
            Some(_) => StrategyMove::idle(),
        }
    }

    fn name(&self) -> &str {
        "lock-hog"
    }
}

#[test]
fn acq_meets_the_paper_bound_under_well_behaved_contention() {
    let iface = m1_module()
        .expect("parses")
        .install(&l0_interface())
        .expect("installs");
    let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(TicketEnvPlayer::new(Pid(1), B, 2)))
        .with_schedule_len(4)
        .with_max_contexts(16)
        .contexts();
    let ob = check_liveness(
        &iface,
        "acq",
        &[Val::Loc(B)],
        Pid(0),
        &contexts,
        ticket_bound(4, 8, 2),
        200_000,
    )
    .expect("starvation-free under the rely");
    assert!(ob.cases_checked > 0);
}

#[test]
fn a_lock_hog_is_detected_as_starvation() {
    let iface = m1_module()
        .expect("parses")
        .install(&l0_interface())
        .expect("installs");
    // The hog takes the lock first and never releases: acq must starve.
    let contexts = vec![ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(HogPlayer { pid: Pid(1) }))
        .with_schedule_len(2)
        .contexts()
        .into_iter()
        .next_back()
        .expect("a context scheduling p1 first")];
    let err = check_liveness(
        &iface,
        "acq",
        &[Val::Loc(B)],
        Pid(0),
        &contexts,
        ticket_bound(4, 8, 2),
        2_000, // small fuel: starvation surfaces quickly
    )
    .expect_err("the hog starves every waiter");
    let msg = format!("{err}");
    assert!(
        msg.contains("starvation") || msg.contains("steps"),
        "unexpected error: {msg}"
    );
}
