//! The §5.4 correctness properties of the queuing lock: "mutual exclusion
//! and starvation freedom", with the liveness resting on "all the lock
//! holders will eventually release the lock" and the fair scheduler.

use std::sync::Arc;

use ccal_core::contexts::ContextGen;
use ccal_core::id::{Loc, Pid};
use ccal_core::val::Val;
use ccal_objects::qlock::{qlock_underlay, replay_ql_busy, QlockEnvPlayer, QLOCK_SOURCE};
use ccal_verifier::check_liveness;

const L: Loc = Loc(4);

fn installed() -> ccal_core::layer::LayerInterface {
    ccal_clightx::clightx_module("Mql", QLOCK_SOURCE)
        .expect("parses")
        .install(&qlock_underlay())
        .expect("installs")
}

#[test]
fn acq_q_is_starvation_free_under_releasing_contenders() {
    // The sleeping waiter is woken and handed the lock within a bounded
    // number of scheduling steps — the Fig. 11 proof obligation: "the
    // starvation-freedom proof of queuing lock is mainly about the
    // termination of the sleep primitive call".
    let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(QlockEnvPlayer::new(Pid(1), L, 2)))
        .with_schedule_len(4)
        .with_max_contexts(16)
        .contexts();
    let ob = check_liveness(
        &installed(),
        "acq_q",
        &[Val::Loc(L)],
        Pid(0),
        &contexts,
        96, // generous scheduling-step bound for two participants
        200_000,
    )
    .expect("acq_q terminates under the rely");
    assert!(ob.cases_checked > 0);
}

#[test]
fn busy_value_always_names_the_holder() {
    // The §5.4 mutual-exclusion invariant: "the busy value of the lock
    // (ql_busy) is always equal to the lock holder's thread ID". Run a
    // contended workload and check the invariant at every log prefix.
    use ccal_core::conc::ConcurrentMachine;
    use ccal_core::env::EnvContext;
    use ccal_core::id::PidSet;
    use ccal_core::log::Log;
    use ccal_core::strategy::RoundRobinScheduler;
    use std::collections::BTreeMap;

    let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2)));
    let machine = ConcurrentMachine::new(
        installed(),
        PidSet::from_pids([Pid(0), Pid(1)]),
        env,
    )
    .with_fuel(500_000);
    let mut programs = BTreeMap::new();
    for t in 0..2 {
        programs.insert(
            Pid(t),
            vec![
                ("acq_q".to_owned(), vec![Val::Loc(L)]),
                ("rel_q".to_owned(), vec![Val::Loc(L)]),
                ("acq_q".to_owned(), vec![Val::Loc(L)]),
                ("rel_q".to_owned(), vec![Val::Loc(L)]),
            ],
        );
    }
    let out = machine.run(&programs).expect("workload completes");
    // At every prefix, the abstracted holder (via R_ql) agrees with the
    // busy value.
    let rel = ccal_objects::qlock::r_ql_relation();
    for cut in 0..=out.log.len() {
        let prefix = Log::from_events(out.log.iter().take(cut).cloned());
        let busy = replay_ql_busy(&prefix, L);
        let holder = ccal_core::replay::replay_atomic_lock(
            &rel.abstracted(&prefix).expect("abstractable"),
            L,
        )
        .expect("legal history");
        match holder {
            Some(p) => assert_eq!(busy, i64::from(p.0), "at prefix {cut}"),
            None => assert_eq!(busy, -1, "at prefix {cut}"),
        }
    }
}

#[test]
fn fifo_handoff_order_is_respected() {
    // Sleepers are woken in FIFO order: with three contenders queueing
    // behind a holder, hand-offs follow the sleep order.
    use ccal_core::conc::ConcurrentMachine;
    use ccal_core::env::EnvContext;
    use ccal_core::event::EventKind;
    use ccal_core::id::PidSet;
    use ccal_core::strategy::ScriptScheduler;
    use std::collections::BTreeMap;

    let domain: Vec<Pid> = (0..3).map(Pid).collect();
    // p0 takes the lock; p1 then p2 queue behind it.
    let env = EnvContext::new(Arc::new(ScriptScheduler::new(
        vec![Pid(0), Pid(0), Pid(1), Pid(1), Pid(2), Pid(2)],
        domain.clone(),
    )));
    let machine = ConcurrentMachine::new(
        installed(),
        PidSet::from_pids(domain),
        env,
    )
    .with_fuel(500_000);
    let mut programs = BTreeMap::new();
    for t in 0..3 {
        programs.insert(
            Pid(t),
            vec![
                ("acq_q".to_owned(), vec![Val::Loc(L)]),
                ("rel_q".to_owned(), vec![Val::Loc(L)]),
            ],
        );
    }
    let out = machine.run(&programs).expect("workload completes");
    // Extract hand-off targets from ql_pass events (ignoring -1).
    let handoffs: Vec<i64> = out
        .log
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Prim(n, args) if n == "ql_pass" => {
                args.get(1).and_then(|v| v.as_int().ok()).filter(|t| *t >= 0)
            }
            _ => None,
        })
        .collect();
    // Whoever slept first is handed the lock first.
    let sleep_order: Vec<i64> = out
        .log
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Sleep(_, _)))
        .map(|e| i64::from(e.pid.0))
        .collect();
    assert_eq!(
        handoffs,
        sleep_order,
        "hand-offs follow FIFO sleep order; log: {}",
        out.log
    );
}
