//! Soundness (Thm 2.2) for the shared-queue layer with two focused
//! participants: any client running over the lock-based implementation is
//! contextually refined by the same client over the atomic queue
//! interface.

use std::sync::Arc;

use ccal_core::calculus::pcomp;
use ccal_core::contexts::ContextGen;
use ccal_core::id::{Loc, Pid, PidSet};
use ccal_core::refine::{check_contextual_refinement, ClientProgram};
use ccal_core::val::Val;
use ccal_objects::sharedq::{certify_shared_queue, SharedQEnvPlayer};

const Q: Loc = Loc(3);

fn contexts(env_pid: Pid) -> Vec<ccal_core::env::EnvContext> {
    ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(env_pid, Arc::new(SharedQEnvPlayer::new(env_pid, Q, 2)))
        .with_schedule_len(3)
        .contexts()
}

#[test]
fn queue_layer_composes_and_satisfies_soundness() {
    let l0 = certify_shared_queue(Pid(0), Q, contexts(Pid(1))).expect("pid 0 certifies");
    let l1 = certify_shared_queue(Pid(1), Q, contexts(Pid(0))).expect("pid 1 certifies");
    let both = pcomp(&l0, &l1).expect("compatible queue layers");
    assert_eq!(both.focused, PidSet::from_pids([Pid(0), Pid(1)]));

    let mut client = ClientProgram::new();
    client.insert(
        Pid(0),
        vec![
            ("enQ".to_owned(), vec![Val::Loc(Q), Val::Int(1)]),
            ("deQ".to_owned(), vec![Val::Loc(Q)]),
        ],
    );
    client.insert(
        Pid(1),
        vec![
            ("enQ".to_owned(), vec![Val::Loc(Q), Val::Int(2)]),
            ("deQ".to_owned(), vec![Val::Loc(Q)]),
        ],
    );
    let run_contexts = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_schedule_len(4)
        .contexts();
    let ob = check_contextual_refinement(&both, &client, &run_contexts, 200_000)
        .expect("Thm 2.2 holds for the queue tower");
    assert!(ob.cases_checked > 0, "{ob}");
}

#[test]
fn soundness_detects_a_broken_overlay() {
    // Negative control: replace the overlay's deQ with one that returns a
    // constant — the soundness check must find the divergence.
    use ccal_core::calculus::CertifiedLayer;
    use ccal_core::event::EventKind;
    use ccal_core::id::QId;
    use ccal_core::layer::{LayerInterface, PrimSpec};

    let good = certify_shared_queue(Pid(0), Q, contexts(Pid(1))).expect("certifies");
    let broken_overlay = LayerInterface::builder("Lq_high")
        .prim(good.overlay.prim("enQ").expect("enQ").clone())
        .prim(PrimSpec::atomic("deQ", |ctx, args| {
            let q = args[0].as_loc()?;
            ctx.emit(EventKind::DeQ(QId(q.0)));
            Ok(Val::Int(999)) // wrong: ignores the replayed queue
        }))
        .build();
    let broken = CertifiedLayer {
        overlay: broken_overlay,
        ..good
    };
    let mut client = ClientProgram::new();
    client.insert(
        Pid(0),
        vec![
            ("enQ".to_owned(), vec![Val::Loc(Q), Val::Int(5)]),
            ("deQ".to_owned(), vec![Val::Loc(Q)]),
        ],
    );
    let run_contexts = vec![ContextGen::new(vec![Pid(0)]).round_robin()];
    let err = check_contextual_refinement(&broken, &client, &run_contexts, 200_000)
        .expect_err("constant deQ cannot refine");
    assert!(format!("{err}").contains("return values") || format!("{err}").contains("related"));
}
