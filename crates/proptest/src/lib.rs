//! Offline, deterministic stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace has no access to the crates.io
//! registry, so the real `proptest` cannot be resolved — even as an unused
//! optional dependency, Cargo insists on resolving it into the lockfile.
//! This crate implements the exact API subset the workspace's property
//! tests use, as a path dependency, so the tests compile and run unchanged
//! offline.
//!
//! Differences from real proptest, by design:
//!
//! * Generation is **deterministic**: a splitmix64 PRNG seeded from the
//!   test's module path, so every run explores the same cases (matching
//!   the workspace's "determinism" design principle; see DESIGN.md §5).
//! * No shrinking: a failing case panics with the ordinary assert message.
//! * No persistence: `.proptest-regressions` files are ignored.
//! * Strategies are re-sampled uniformly; `prop_oneof!` weights and
//!   `prop_recursive` size hints are accepted but only the depth bound is
//!   honoured.
//!
//! [`proptest`]: https://docs.rs/proptest

use std::ops::Range;
use std::rc::Rc;

/// Test-runner configuration and the deterministic PRNG.
pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (subset: `cases`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator, seeded from the test path so
    /// each property explores a stable but distinct case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test's fully qualified name (FNV-1a).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next 64 pseudo-random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

use test_runner::TestRng;

/// A value generator: the mirror of `proptest::strategy::Strategy`.
///
/// Unlike the real trait this one simply produces values (no value trees,
/// no shrinking); combinators keep their real-proptest names so call sites
/// compile unchanged.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy. The result is cheaply cloneable.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategies: `self` is the leaf; `recurse` builds one
    /// level on top of a strategy for the level below. `depth` bounds the
    /// recursion; the size hints are accepted for API compatibility but
    /// unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let leaf = self.boxed();
        let mut tower = leaf.clone();
        for _ in 0..depth {
            let rec = recurse(tower).boxed();
            tower = Union::new(vec![leaf.clone(), rec]).boxed();
        }
        tower
    }
}

/// A cloneable, type-erased strategy (mirror of
/// `proptest::strategy::BoxedStrategy`).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// The strategy produced by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value (mirror of
/// `proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between alternative strategies — what [`prop_oneof!`]
/// builds.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union of the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                #[allow(clippy::cast_sign_loss)]
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                ((self.start as i128) + off) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($( ( $($S:ident . $idx:tt),+ ) )+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (mirror of `proptest::collection`).
pub mod collection {
    use super::{test_runner::TestRng, Strategy};
    use std::ops::Range;

    /// Strategy for `Vec`s with a size drawn from a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (mirror of `proptest::bool`).
pub mod bool {
    /// The strategy behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` uniformly.
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut super::test_runner::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The common imports (mirror of `proptest::prelude`).
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{BoxedStrategy, Just, Strategy, Union};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($p:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __strategy = ( $($strat,)+ );
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                let ( $($p,)+ ) = $crate::Strategy::generate(&__strategy, &mut __rng);
                // The closure gives `prop_assume!` an early-exit `return`.
                (|| $body)();
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies. Weighted arms are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

/// Asserts a condition inside a property (plain `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("x::y");
        let mut b = crate::test_runner::TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_test("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        for _ in 0..200 {
            let v = Strategy::generate(&(-20_i64..20), &mut rng);
            assert!((-20..20).contains(&v));
            let u = Strategy::generate(&(0_u8..4), &mut rng);
            assert!(u < 4);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(n) => {
                    assert!((0..10).contains(n), "leaf outside its strategy range");
                    0
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0_i64..10).prop_map(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::for_test("rec");
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires patterns, assume, and asserts together.
        #[test]
        fn macro_end_to_end((a, b) in (0_u32..10, 0_u32..10), v in crate::collection::vec(0_u8..3, 0..5)) {
            prop_assume!(a != 3);
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(v.iter().filter(|x| **x > 2).count(), 0);
        }
    }
}
