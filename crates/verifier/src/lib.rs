//! # ccal-verifier — bounded verification drivers
//!
//! The program-verifier layer of the toolkit (Fig. 2's "C verifier" /
//! "Asm verifier" / "Refinement libraries" in executable form): drivers
//! that discharge the correctness properties certified concurrent layers
//! must enforce — "every certified concurrent object satisfies not only a
//! safety property (e.g., linearizability) but also a progress property
//! (e.g., starvation-freedom)" (§1) — plus data-race freedom via push/pull
//! stuckness and multi-call sequential refinement for stateful objects.
//!
//! * [`seqref`] — whole-script refinement (queues, schedulers);
//! * [`linz`] — linearizability via contextual abstraction (§7);
//! * [`live`] — starvation-freedom within the paper's `n·m·#CPU` bound
//!   (§4.1);
//! * [`race`] — data-race freedom ("the program does not get stuck",
//!   §3.1).

#![warn(missing_docs)]

pub mod linz;
pub mod live;
pub mod race;
pub mod report;
pub mod seqref;

pub use linz::{
    check_linearizability, check_linearizability_por, check_linearizability_tuned,
    fifo_history_validator, lock_history_validator,
};
pub use live::{check_liveness, check_liveness_por, check_liveness_tuned, ticket_bound};
pub use race::{
    check_race_freedom, check_race_freedom_por, check_race_freedom_tuned, count_racy_interleavings,
};
pub use report::{ReportSection, VerificationReport};
pub use seqref::{
    check_sequence_refinement, check_sequence_refinement_por, check_sequence_refinement_tuned,
    OpScript,
};
