//! Linearizability checking via contextual abstraction.
//!
//! "Linearizability is actually equivalent to a termination-insensitive
//! version of the contextual refinement property" (§7, citing Filipović
//! et al.). The toolkit exploits that equivalence: an object is
//! linearizable iff its concurrent implementation refines the *atomic*
//! interface whose methods take effect in log order. The checker runs
//! client programs on the implementation over many interleavings,
//! abstracts each log through the object's simulation relation, and
//! requires that the resulting *atomic history* is (1) a well-formed
//! sequential history of the atomic object (its replay function never
//! gets stuck) and (2) consistent with every value the clients actually
//! observed.

use std::collections::BTreeMap;

use ccal_core::calculus::{LayerError, Obligation, Rule};
use ccal_core::conc::ThreadScript;
use ccal_core::env::EnvContext;
use ccal_core::explore::{Case, ExploreOptions, Kernel};
use ccal_core::id::{Pid, PidSet};
use ccal_core::layer::LayerInterface;
use ccal_core::log::Log;
use ccal_core::sim::SimRelation;
use ccal_core::val::Val;

/// The atomic-history validator for one object: given the abstracted log
/// and the per-participant observed return values, decide whether the
/// history is a legal sequential behavior of the atomic object.
pub type HistoryValidator =
    dyn Fn(&Log, &BTreeMap<Pid, Vec<Val>>) -> Result<(), String> + Send + Sync;

/// Checks linearizability of an object implementation: for every context,
/// the concurrent run's abstracted log must be a legal atomic history
/// consistent with all observed results.
///
/// # Errors
///
/// [`LayerError::Mismatch`] naming the context and the violation;
/// [`LayerError::Machine`] if a run fails.
pub fn check_linearizability(
    impl_iface: &LayerInterface,
    focused: &PidSet,
    programs: &BTreeMap<Pid, ThreadScript>,
    relation: &SimRelation,
    validate_history: &HistoryValidator,
    contexts: &[EnvContext],
    fuel: u64,
) -> Result<Obligation, LayerError> {
    check_linearizability_por(
        impl_iface,
        focused,
        programs,
        relation,
        validate_history,
        contexts,
        fuel,
        ccal_core::por::por_enabled(),
    )
}

/// [`check_linearizability`] with the partial-order reduction explicitly
/// on or off (contexts marked trace-equivalent by the generator are
/// skipped and counted as `cases_reduced` when `por` is true).
///
/// # Errors
///
/// As [`check_linearizability`].
#[allow(clippy::too_many_arguments)]
pub fn check_linearizability_por(
    impl_iface: &LayerInterface,
    focused: &PidSet,
    programs: &BTreeMap<Pid, ThreadScript>,
    relation: &SimRelation,
    validate_history: &HistoryValidator,
    contexts: &[EnvContext],
    fuel: u64,
    por: bool,
) -> Result<Obligation, LayerError> {
    check_linearizability_tuned(
        impl_iface,
        focused,
        programs,
        relation,
        validate_history,
        contexts,
        fuel,
        ccal_core::par::default_workers(),
        por,
        ccal_core::prefix::prefix_share_enabled(),
        ccal_core::prefix::prefix_deep_enabled(),
    )
}

/// [`check_linearizability_por`] with an explicit worker count — `1`
/// explores the grid serially on the calling thread, the reference
/// behavior the forensics replay gate uses for bit-identical reproduction
/// — and explicit prefix-sharing of runs across contexts with common
/// consumed schedule prefixes (see [`ccal_core::prefix`]).
/// `deep_share` additionally snapshots the whole game state before every
/// scheduler decision ([`ccal_core::prefix::SnapshotTrie`]), so a context
/// diverging at turn `k` forks the deepest snapshot and replays only the
/// remaining turns; it is effective only when `prefix_share` is on.
///
/// # Errors
///
/// As [`check_linearizability`].
#[allow(clippy::too_many_arguments)]
pub fn check_linearizability_tuned(
    impl_iface: &LayerInterface,
    focused: &PidSet,
    programs: &BTreeMap<Pid, ThreadScript>,
    relation: &SimRelation,
    validate_history: &HistoryValidator,
    contexts: &[EnvContext],
    fuel: u64,
    workers: usize,
    por: bool,
    prefix_share: bool,
    deep_share: bool,
) -> Result<Obligation, LayerError> {
    // The traced run is a deterministic function of the consumed schedule
    // prefix, so the kernel's game-run helper shares it across contexts
    // (memo + whole-`GameState` query-point snapshots); the history
    // abstraction + validation are redone per case (cheap, and the
    // diagnostics name the context index).
    let kernel: Kernel<ccal_core::conc::GameState, ccal_core::explore::GameRun> =
        Kernel::new(&ExploreOptions::tuned(workers, por, prefix_share, deep_share));
    let explored = kernel.explore("linz", contexts, 1, |ci, _| {
        let env = &contexts[ci];
        let (res, log) = kernel.run_game(impl_iface, focused, programs, env, fuel);
        let fail = |reason: String, err: LayerError| -> Case<(), LayerError> {
            Case::failed(err, log.clone(), reason, format!("context #{ci}"))
        };
        let out = match res {
            Ok(out) => out,
            Err(e) if e.is_invalid_context() => return Case::Skipped,
            Err(e) => {
                let reason = format!("machine failure: {e}");
                return fail(reason, LayerError::Machine(e));
            }
        };
        let Some(history) = relation.abstracted(&out.log) else {
            return fail(
                format!("log not in domain of {}", relation.name()),
                LayerError::Mismatch {
                    expected: format!("log in domain of {}", relation.name()),
                    found: out.log.to_string(),
                    context: format!("linearizability, context #{ci}"),
                },
            );
        };
        if let Err(msg) = validate_history(&history, &out.rets) {
            return fail(
                format!("illegal atomic history: {msg}"),
                LayerError::Mismatch {
                    expected: "a legal atomic history".to_owned(),
                    found: format!("{msg}; history: {history}"),
                    context: format!("linearizability, context #{ci}"),
                },
            );
        }
        Case::Checked(())
    });
    if let Some(e) = explored.failure {
        return Err(e);
    }
    Ok(Obligation {
        rule: Rule::Linearizability,
        description: format!(
            "histories of {} abstract (via {}) to legal atomic behaviors",
            impl_iface.name,
            relation.name()
        ),
        cases_checked: explored.cases_checked,
        cases_skipped: explored.cases_skipped,
        cases_reduced: explored.cases_reduced,
    })
}

/// A ready-made history validator for atomic mutual-exclusion locks: the
/// `acq`/`rel` (and `acq_q`/`rel_q`) events of every location must be
/// well-bracketed — [`ccal_core::replay::replay_atomic_lock`] must not get
/// stuck on any location appearing in the history.
pub fn lock_history_validator() -> Box<HistoryValidator> {
    Box::new(|history: &Log, _rets| {
        use ccal_core::event::EventKind;
        let mut locs = std::collections::BTreeSet::new();
        for e in history.iter() {
            match e.kind {
                EventKind::Acq(b)
                | EventKind::Rel(b)
                | EventKind::AcqQ(b)
                | EventKind::RelQ(b) => {
                    locs.insert(b);
                }
                _ => {}
            }
        }
        for b in locs {
            ccal_core::replay::replay_atomic_lock(history, b).map_err(|e| e.to_string())?;
        }
        Ok(())
    })
}

/// A ready-made validator for atomic FIFO queues: every `deQ` return value
/// observed by a client must equal the value the replayed queue had at its
/// front at that point in the history. `deq_name` names the implementation
/// primitive whose returns correspond to `DeQ` events (in program order).
pub fn fifo_history_validator(deq_name: &str) -> Box<HistoryValidator> {
    let _ = deq_name; // documented for symmetry; returns are matched in order
    Box::new(|history: &Log, rets| {
        use ccal_core::event::EventKind;
        // Predicted returns, per participant, in history order.
        let mut predicted: BTreeMap<Pid, Vec<Val>> = BTreeMap::new();
        for (at, e) in history.iter().enumerate() {
            if matches!(e.kind, EventKind::DeQ(_)) {
                predicted
                    .entry(e.pid)
                    .or_default()
                    .push(ccal_core::replay::deq_result(history, at));
            }
        }
        for (pid, pred) in predicted {
            let observed: Vec<Val> = rets
                .get(&pid)
                .map(|v| {
                    v.iter()
                        .filter(|x| !matches!(x, Val::Unit))
                        .cloned()
                        .collect()
                })
                .unwrap_or_default();
            if observed != pred {
                return Err(format!(
                    "{pid} observed {observed:?} but the linearized history predicts {pred:?}"
                ));
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_core::contexts::ContextGen;
    use ccal_core::event::{Event, EventKind};
    use ccal_core::id::{Loc, QId};
    use ccal_core::layer::PrimSpec;

    fn atomic_queue_iface() -> LayerInterface {
        LayerInterface::builder("Lq")
            .prim(PrimSpec::atomic("enq", |ctx, args| {
                let q = QId(args[0].as_int()? as u32);
                ctx.emit(EventKind::EnQ(q, args[1].clone()));
                Ok(Val::Unit)
            }))
            .prim(PrimSpec::atomic("deq", |ctx, args| {
                let q = QId(args[0].as_int()? as u32);
                ctx.emit(EventKind::DeQ(q));
                Ok(ccal_core::replay::deq_result(
                    ctx.log,
                    ctx.log.len() - 1,
                ))
            }))
            .build()
    }

    #[test]
    fn atomic_queue_is_linearizable() {
        let mut programs = BTreeMap::new();
        programs.insert(
            Pid(0),
            vec![
                ("enq".to_owned(), vec![Val::Int(0), Val::Int(10)]),
                ("deq".to_owned(), vec![Val::Int(0)]),
            ],
        );
        programs.insert(
            Pid(1),
            vec![
                ("enq".to_owned(), vec![Val::Int(0), Val::Int(20)]),
                ("deq".to_owned(), vec![Val::Int(0)]),
            ],
        );
        let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
            .with_schedule_len(4)
            .contexts();
        let ob = check_linearizability(
            &atomic_queue_iface(),
            &PidSet::from_pids([Pid(0), Pid(1)]),
            &programs,
            &SimRelation::identity(),
            &*fifo_history_validator("deq"),
            &contexts,
            100_000,
        )
        .unwrap();
        assert!(ob.cases_checked > 0);
    }

    #[test]
    fn lock_validator_accepts_bracketing_and_rejects_violations() {
        let v = lock_history_validator();
        let ok = Log::from_events([
            Event::new(Pid(0), EventKind::Acq(Loc(0))),
            Event::new(Pid(0), EventKind::Rel(Loc(0))),
            Event::new(Pid(1), EventKind::Acq(Loc(0))),
        ]);
        assert!(v(&ok, &BTreeMap::new()).is_ok());
        let bad = Log::from_events([
            Event::new(Pid(0), EventKind::Acq(Loc(0))),
            Event::new(Pid(1), EventKind::Acq(Loc(0))),
        ]);
        assert!(v(&bad, &BTreeMap::new()).is_err());
    }

    #[test]
    fn fifo_validator_rejects_wrong_observations() {
        let v = fifo_history_validator("deq");
        let history = Log::from_events([
            Event::new(Pid(0), EventKind::EnQ(QId(0), Val::Int(5))),
            Event::new(Pid(1), EventKind::DeQ(QId(0))),
        ]);
        let mut rets = BTreeMap::new();
        rets.insert(Pid(1), vec![Val::Int(5)]);
        assert!(v(&history, &rets).is_ok());
        rets.insert(Pid(1), vec![Val::Int(6)]);
        assert!(v(&history, &rets).is_err());
    }
}
