//! Liveness (starvation-freedom) checking.
//!
//! "By enforcing the fairness of the scheduler in rely conditions, saying
//! that any CPU can be scheduled within `m` steps, we can show the
//! liveness property (i.e., starvation-freedom): the while-loop in `acq`
//! terminates in `n × m × #CPU` steps" (§4.1).
//!
//! [`check_liveness`] executes an operation under every generated (fair,
//! rely-respecting) environment context and asserts it completes within
//! the declared step bound, measured in scheduling events consumed — the
//! paper's notion of "steps" at the game level.

use ccal_core::calculus::{LayerError, Obligation, Rule};
use ccal_core::env::EnvContext;
use ccal_core::explore::{Case, ExploreOptions, Kernel};
use ccal_core::id::Pid;
use ccal_core::layer::LayerInterface;
use ccal_core::machine::LayerMachine;
use ccal_core::val::Val;

/// The paper's ticket-lock starvation bound `n × m × #CPU` (§4.1): `n`
/// bounds the steps a holder keeps the lock, `m` bounds scheduler
/// fairness, and `#CPU` bounds the number of competitors ahead in line.
pub fn ticket_bound(n: u64, m: u64, ncpu: u64) -> u64 {
    n * m * ncpu
}

/// Checks that calling `prim(args)` completes within `bound` scheduling
/// steps under every context (invalid contexts are skipped). Also verifies
/// the run actually terminates — an `OutOfFuel` is a liveness
/// counterexample, reported as a mismatch.
///
/// # Errors
///
/// [`LayerError::Mismatch`] on a starving or over-budget run;
/// [`LayerError::Machine`] on other failures.
pub fn check_liveness(
    iface: &LayerInterface,
    prim: &str,
    args: &[Val],
    pid: Pid,
    contexts: &[EnvContext],
    bound: u64,
    fuel: u64,
) -> Result<Obligation, LayerError> {
    check_liveness_por(
        iface,
        prim,
        args,
        pid,
        contexts,
        bound,
        fuel,
        ccal_core::por::por_enabled(),
    )
}

/// [`check_liveness`] with the partial-order reduction explicitly on or
/// off (contexts marked trace-equivalent by the generator are skipped and
/// counted as `cases_reduced` when `por` is true).
///
/// # Errors
///
/// As [`check_liveness`].
#[allow(clippy::too_many_arguments)]
pub fn check_liveness_por(
    iface: &LayerInterface,
    prim: &str,
    args: &[Val],
    pid: Pid,
    contexts: &[EnvContext],
    bound: u64,
    fuel: u64,
    por: bool,
) -> Result<Obligation, LayerError> {
    check_liveness_tuned(
        iface,
        prim,
        args,
        pid,
        contexts,
        bound,
        fuel,
        ccal_core::par::default_workers(),
        por,
        ccal_core::prefix::prefix_share_enabled(),
        ccal_core::prefix::prefix_deep_enabled(),
    )
}

/// [`check_liveness_por`] with an explicit worker count — `1` explores the
/// grid serially on the calling thread, the reference behavior the
/// forensics replay gate uses for bit-identical reproduction — and
/// explicit prefix-sharing of lower runs across contexts with common
/// consumed schedule prefixes (see [`ccal_core::prefix`]).
/// `deep_share` additionally snapshots the machine and the in-flight run
/// at every environment query point ([`ccal_core::prefix::SnapshotTrie`]),
/// so a multi-query primitive executes once per distinct schedule path and
/// later contexts replay only their suffix; it is effective only when
/// `prefix_share` is on.
///
/// # Errors
///
/// As [`check_liveness`].
#[allow(clippy::too_many_arguments)]
pub fn check_liveness_tuned(
    iface: &LayerInterface,
    prim: &str,
    args: &[Val],
    pid: Pid,
    contexts: &[EnvContext],
    bound: u64,
    fuel: u64,
    workers: usize,
    por: bool,
    prefix_share: bool,
    deep_share: bool,
) -> Result<Obligation, LayerError> {
    // The machine run is a deterministic function of the consumed schedule
    // prefix, so its result (not the per-case classification, which names
    // the context index) is shared across contexts via the kernel's prefix
    // memo; query-point snapshots are plain `RunSnap`s with no extra state.
    type LowerRun = (Result<(), ccal_core::machine::MachineError>, ccal_core::log::Log);
    type LiveSnap = ccal_core::explore::RunSnap<()>;
    let kernel: Kernel<LiveSnap, LowerRun> =
        Kernel::new(&ExploreOptions::tuned(workers, por, prefix_share, deep_share));
    let sched_consumed =
        |m: &LayerMachine| m.log.iter().filter(|e| e.is_sched()).count();
    let snap_point = |k: &ccal_core::prefix::ScheduleKey,
                      mach: &LayerMachine,
                      run: &dyn ccal_core::layer::PrimRun| {
        kernel.snapshot(k, 0, sched_consumed(mach), || {
            Some(LiveSnap {
                machine: mach.fork(),
                run: run.fork_run()?,
                extra: (),
            })
        });
    };
    // Drives the call under an abort-capable query-point hook: `Call`
    // snapshots when deep sharing is on, convergence probing when dedup is
    // on. A convergence hit aborts at the cut, re-grafts the donor's
    // suffix log onto this run's prefix and reuses the donor's verdict at
    // the donor's consumed depth; a completed run seeds the cache at every
    // cut it passed through.
    let drive = |machine: &mut LayerMachine,
                 env: &EnvContext,
                 start: &mut dyn FnMut(
        &mut LayerMachine,
        &mut dyn FnMut(&LayerMachine, &dyn ccal_core::layer::PrimRun) -> bool,
    ) -> Result<
        Option<Val>,
        ccal_core::machine::MachineError,
    >|
     -> (LowerRun, usize) {
        let key = kernel.deep_key(env);
        let conv_key = kernel.conv_key(env);
        let pre = machine.steps_taken() + machine.log.len() as u64;
        let mut hit: Option<(LowerRun, usize, usize)> = None;
        let mut probes: Vec<(ccal_core::fingerprint::ContentHash, usize, usize)> = Vec::new();
        let res = {
            let mut hook = |mach: &LayerMachine, run: &dyn ccal_core::layer::PrimRun| -> bool {
                if let Some(k) = key {
                    snap_point(k, mach, run);
                }
                if let Some(k) = conv_key {
                    let consumed = sched_consumed(mach);
                    if let Some(fp) = mach.conv_fingerprint(run) {
                        if let Some(h) = kernel.converged(k, 0, consumed, fp) {
                            hit = Some(h);
                            return true;
                        }
                        probes.push((fp, consumed, mach.log.len()));
                    }
                }
                false
            };
            start(machine, &mut hook)
        };
        ccal_core::prefix::record_steps(machine.steps_taken() + machine.log.len() as u64 - pre);
        match res {
            Ok(None) => {
                let ((donor_res, donor_log), donor_cut, donor_consumed) =
                    hit.expect("an aborted run implies a convergence hit");
                let mut log = machine.log.clone();
                log.append_all(donor_log.suffix_from(donor_cut).cloned());
                ((donor_res, log), donor_consumed)
            }
            res => {
                let res = res.map(|_| ());
                let consumed = sched_consumed(machine);
                let outcome = (res, machine.log.clone());
                if let Some(k) = conv_key {
                    for (fp, cut_consumed, cut_len) in probes {
                        kernel.converge_record(
                            k,
                            0,
                            cut_consumed,
                            fp,
                            cut_len,
                            consumed,
                            outcome.clone(),
                        );
                    }
                }
                (outcome, consumed)
            }
        }
    };
    let exec_lower = |env: &EnvContext| -> (LowerRun, usize) {
        if let Some(k) = kernel.deep_key(env) {
            if let Some((_, LiveSnap { machine, run, .. })) = kernel.resume_deepest(k, 0) {
                // Fork the deepest snapshotted ancestor and execute only
                // the schedule suffix, counting only the suffix work.
                let mut machine = machine.fork_with_env(env.clone());
                let mut inflight = Some(run);
                return drive(&mut machine, env, &mut |m, hook| {
                    m.resume_query_ctl(
                        inflight.take().expect("the run resumes exactly once"),
                        hook,
                    )
                });
            }
        }
        let mut machine = LayerMachine::new(iface.clone(), pid, env.clone()).with_fuel(fuel);
        drive(&mut machine, env, &mut |m, hook| {
            m.call_prim_ctl(prim, args, hook)
        })
    };
    let explored = kernel.explore("live", contexts, 1, |ci, _| {
        let env = &contexts[ci];
        let (res, log) = kernel.run_shared(env, 0, || exec_lower(env));
        let fail = |reason: String, log: &ccal_core::log::Log, err: LayerError| {
            Case::failed(err, log.clone(), reason, format!("context #{ci}"))
        };
        match res {
            Ok(()) => {}
            Err(e) if e.is_invalid_context() => return Case::Skipped,
            Err(ccal_core::machine::MachineError::OutOfFuel { .. }) => {
                return fail(
                    "run exhausted its fuel (starvation)".to_owned(),
                    &log,
                    LayerError::Mismatch {
                        expected: format!("`{prim}` to terminate (starvation-freedom)"),
                        found: "run exhausted its fuel (starvation)".to_owned(),
                        context: format!("liveness, context #{ci}"),
                    },
                );
            }
            Err(e) => {
                let reason = format!("machine failure: {e}");
                return fail(reason, &log, LayerError::Machine(e));
            }
        }
        let steps = log.iter().filter(|e| e.is_sched()).count() as u64;
        if steps > bound {
            return fail(
                format!("{steps} steps exceed the bound {bound}"),
                &log,
                LayerError::Mismatch {
                    expected: format!("completion within {bound} scheduling steps"),
                    found: format!("{steps} steps"),
                    context: format!("liveness of `{prim}`, context #{ci}"),
                },
            );
        }
        Case::Checked(steps)
    });
    if let Some(e) = explored.failure {
        return Err(e);
    }
    let worst = explored.checked.iter().copied().fold(0_u64, u64::max);
    Ok(Obligation {
        rule: Rule::Liveness,
        description: format!(
            "`{prim}` completes within {bound} steps on {} (worst observed: {worst})",
            iface.name
        ),
        cases_checked: explored.cases_checked,
        cases_skipped: explored.cases_skipped,
        cases_reduced: explored.cases_reduced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_core::contexts::ContextGen;
    use ccal_core::event::EventKind;
    use ccal_core::layer::{PrimCtx, PrimRun, PrimSpec, PrimStep};
    use ccal_core::machine::MachineError;

    /// A primitive that waits until the environment has produced `k`
    /// events, then finishes.
    fn wait_for_iface(k: usize) -> LayerInterface {
        struct WaitFor(usize);
        impl PrimRun for WaitFor {
            fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
                if ctx.log.without_sched().len() >= self.0 {
                    ctx.emit(EventKind::Prim("done".into(), vec![]));
                    Ok(PrimStep::Done(Val::Unit))
                } else {
                    Ok(PrimStep::Query)
                }
            }
        }
        LayerInterface::builder("L-wait")
            .prim(PrimSpec::strategy("wait", true, move |_, _| {
                Box::new(WaitFor(k))
            }))
            .build()
    }

    fn chatty_contexts() -> Vec<EnvContext> {
        use ccal_core::strategy::FnStrategy;
        use std::sync::Arc;
        let noisy = FnStrategy::new("noisy", |_log| {
            ccal_core::strategy::StrategyMove::Emit(vec![ccal_core::event::Event::prim(
                Pid(1),
                "noise",
                vec![],
            )])
        });
        vec![ContextGen::new(vec![Pid(0), Pid(1)])
            .with_player(Pid(1), Arc::new(noisy))
            .round_robin()]
    }

    #[test]
    fn bounded_wait_passes_within_bound() {
        let ob = check_liveness(
            &wait_for_iface(3),
            "wait",
            &[],
            Pid(0),
            &chatty_contexts(),
            32,
            100_000,
        )
        .unwrap();
        assert_eq!(ob.cases_checked, 1);
        assert_eq!(ob.rule, Rule::Liveness);
    }

    #[test]
    fn over_budget_run_is_reported() {
        let err = check_liveness(
            &wait_for_iface(20),
            "wait",
            &[],
            Pid(0),
            &chatty_contexts(),
            4, // far too tight
            100_000,
        )
        .unwrap_err();
        assert!(matches!(err, LayerError::Mismatch { .. }));
    }

    #[test]
    fn starving_run_is_reported() {
        // The environment never produces events, so the wait never ends.
        let silent = vec![ContextGen::new(vec![Pid(0), Pid(1)]).round_robin()];
        let err = check_liveness(
            &wait_for_iface(1),
            "wait",
            &[],
            Pid(0),
            &silent,
            1_000_000,
            500,
        )
        .unwrap_err();
        assert!(matches!(err, LayerError::Mismatch { .. }));
    }

    #[test]
    fn ticket_bound_formula() {
        assert_eq!(ticket_bound(3, 4, 2), 24);
    }
}
