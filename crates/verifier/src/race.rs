//! Data-race-freedom checking via push/pull stuckness.
//!
//! "If a program tries to pull a not-free location, or tries to access or
//! push to a location not owned by the current CPU, a data race may occur
//! and the machine gets stuck. One goal of concurrent program verification
//! is to show that a program is data-race free; in our setting, we
//! accomplish this by showing that the program does not get stuck" (§3.1).
//!
//! [`check_race_freedom`] runs a multi-participant program under every
//! enumerated interleaving and asserts no run gets stuck. For a negative
//! control, [`count_racy_interleavings`] reports how many interleavings
//! *do* race (used by tests and by the benchmark harness to show that the
//! raw program races while the locked version does not).

use std::collections::BTreeMap;

use ccal_core::calculus::{LayerError, Obligation, Rule};
use ccal_core::conc::{ConcurrentMachine, ThreadScript};
use ccal_core::env::EnvContext;
use ccal_core::id::{Pid, PidSet};
use ccal_core::layer::LayerInterface;
use ccal_core::machine::MachineError;

/// Checks that no enumerated interleaving of `programs` over `iface` gets
/// stuck (races) — starvation under an unfair prefix is skipped, any
/// `Stuck`/`Replay` failure is a counterexample.
///
/// # Errors
///
/// [`LayerError::Mismatch`] naming the racing context;
/// [`LayerError::Machine`] on unrelated failures.
pub fn check_race_freedom(
    iface: &LayerInterface,
    focused: &PidSet,
    programs: &BTreeMap<Pid, ThreadScript>,
    contexts: &[EnvContext],
    fuel: u64,
) -> Result<Obligation, LayerError> {
    check_race_freedom_por(
        iface,
        focused,
        programs,
        contexts,
        fuel,
        ccal_core::por::por_enabled(),
    )
}

/// [`check_race_freedom`] with the partial-order reduction explicitly on
/// or off (contexts marked trace-equivalent by the generator are skipped
/// and counted as `cases_reduced` when `por` is true).
///
/// # Errors
///
/// As [`check_race_freedom`].
pub fn check_race_freedom_por(
    iface: &LayerInterface,
    focused: &PidSet,
    programs: &BTreeMap<Pid, ThreadScript>,
    contexts: &[EnvContext],
    fuel: u64,
    por: bool,
) -> Result<Obligation, LayerError> {
    check_race_freedom_tuned(
        iface,
        focused,
        programs,
        contexts,
        fuel,
        ccal_core::par::default_workers(),
        por,
        ccal_core::prefix::prefix_share_enabled(),
        ccal_core::prefix::prefix_deep_enabled(),
    )
}

/// [`check_race_freedom_por`] with an explicit worker count — `1` explores
/// the grid serially on the calling thread, the reference behavior the
/// forensics replay gate uses for bit-identical reproduction — and
/// explicit prefix-sharing of runs across contexts with common consumed
/// schedule prefixes (see [`ccal_core::prefix`]).
/// `deep_share` additionally snapshots the whole game state before every
/// scheduler decision ([`ccal_core::prefix::SnapshotTrie`]), so a context
/// diverging at turn `k` forks the deepest snapshot and replays only the
/// remaining turns; it is effective only when `prefix_share` is on.
///
/// # Errors
///
/// As [`check_race_freedom`].
#[allow(clippy::too_many_arguments)]
pub fn check_race_freedom_tuned(
    iface: &LayerInterface,
    focused: &PidSet,
    programs: &BTreeMap<Pid, ThreadScript>,
    contexts: &[EnvContext],
    fuel: u64,
    workers: usize,
    por: bool,
    prefix_share: bool,
    deep_share: bool,
) -> Result<Obligation, LayerError> {
    // Interleavings are independent: explore on the shared work queue,
    // fold in context order for a deterministic first counterexample.
    #[allow(clippy::items_after_statements)]
    enum Case {
        Checked,
        Skipped,
        Reduced,
        Failed(Box<LayerError>),
    }
    // The traced run is a deterministic function of the consumed schedule
    // prefix, so it is shared across contexts via the prefix memo; only the
    // per-case classification (which names the context index) is redone.
    type TracedRun = (
        Result<ccal_core::conc::ConcurrentOutcome, MachineError>,
        ccal_core::log::Log,
    );
    let memo: ccal_core::prefix::PrefixMemo<TracedRun> = ccal_core::prefix::PrefixMemo::new();
    // A forked mid-run game state (deep sharing): one turn consumes one
    // schedule slot, so a state at turn `k` resumes under any context
    // agreeing on the first `k` slots.
    #[allow(clippy::items_after_statements)]
    struct GameSnap(ccal_core::conc::GameState);
    #[allow(clippy::items_after_statements)]
    impl ccal_core::prefix::ForkSnapshot for GameSnap {
        fn fork(&self) -> Option<Self> {
            self.0.fork().map(GameSnap)
        }
    }
    let deep = prefix_share && deep_share;
    let snapshots: ccal_core::prefix::SnapshotTrie<GameSnap> =
        ccal_core::prefix::SnapshotTrie::new(ccal_core::prefix::DEFAULT_SNAPSHOT_CAP);
    let exec_lower = |env: &EnvContext| -> (TracedRun, usize) {
        let key = if deep { env.schedule_key() } else { None };
        let machine =
            ConcurrentMachine::new(iface.clone(), focused.clone(), env.clone()).with_fuel(fuel);
        let (res, log, pre) = match key {
            Some(k) => {
                let mut hook = |st: &ccal_core::conc::GameState| {
                    snapshots.insert_with(k, 0, st.sched_consumed(), || st.fork().map(GameSnap));
                };
                match snapshots.lookup_deepest(k, 0) {
                    Some((_, GameSnap(st))) => {
                        // Fork the deepest snapshotted ancestor and replay
                        // only the remaining turns, counting only them.
                        ccal_core::prefix::record_deep();
                        let pre = st.log_len() as u64;
                        let (res, log) = machine.run_traced_from(st, &mut hook);
                        (res, log, pre)
                    }
                    None => {
                        let (res, log) = machine.run_traced_with_snapshots(programs, &mut hook);
                        (res, log, 0)
                    }
                }
            }
            None => {
                let (res, log) = machine.run_traced(programs);
                (res, log, 0)
            }
        };
        ccal_core::prefix::record_steps(log.len() as u64 - pre);
        let consumed = log.iter().filter(|e| e.is_sched()).count();
        ((res, log), consumed)
    };
    let run_lower = |env: &EnvContext| -> TracedRun {
        match if prefix_share { env.schedule_key() } else { None } {
            Some(k) => {
                if let Some(hit) = memo.lookup(k, 0) {
                    ccal_core::prefix::record_shared();
                    return hit;
                }
                let (outcome, consumed) = exec_lower(env);
                memo.insert(k, 0, consumed, outcome.clone());
                outcome
            }
            None => exec_lower(env).0,
        }
    };
    let run_case = |ci: usize| -> Case {
        let env = &contexts[ci];
        if por && env.is_por_equivalent() {
            return Case::Reduced;
        }
        let (res, log) = run_lower(env);
        let fail = |reason: String, err: LayerError| -> Case {
            if ccal_core::forensics::capturing() {
                ccal_core::forensics::record(ccal_core::forensics::FailingCase {
                    checker: "race",
                    case_index: ci,
                    ctx_index: ci,
                    detail: format!("context #{ci}"),
                    log: log.clone(),
                    reason,
                });
            }
            Case::Failed(Box::new(err))
        };
        match res {
            Ok(_) => Case::Checked,
            Err(e) if e.is_invalid_context() => Case::Skipped,
            Err(MachineError::OutOfFuel { .. }) => Case::Skipped,
            Err(MachineError::Stuck(msg)) => fail(
                format!("stuck: {msg}"),
                LayerError::Mismatch {
                    expected: "a race-free run".to_owned(),
                    found: format!("stuck: {msg}"),
                    context: format!("race freedom, context #{ci}"),
                },
            ),
            Err(MachineError::Replay(e)) => fail(
                format!("replay stuck: {e}"),
                LayerError::Mismatch {
                    expected: "a race-free run".to_owned(),
                    found: format!("replay stuck: {e}"),
                    context: format!("race freedom, context #{ci}"),
                },
            ),
            Err(e) => {
                let reason = format!("machine failure: {e}");
                fail(reason, LayerError::Machine(e))
            }
        }
    };
    let order = if prefix_share && workers > 1 {
        let keys: Vec<Option<&ccal_core::prefix::ScheduleKey>> =
            contexts.iter().map(EnvContext::schedule_key).collect();
        ccal_core::prefix::subtree_case_order(&keys, 1)
    } else {
        None
    };
    let slots =
        ccal_core::par::run_cases_ordered(contexts.len(), workers, order.as_deref(), run_case, |c| {
            matches!(c, Case::Failed(_))
        });
    let mut cases_checked = 0;
    let mut cases_skipped = 0;
    let mut cases_reduced = 0;
    for slot in slots {
        match slot {
            None => break,
            Some(Case::Checked) => cases_checked += 1,
            Some(Case::Skipped) => cases_skipped += 1,
            Some(Case::Reduced) => cases_reduced += 1,
            Some(Case::Failed(e)) => return Err(*e),
        }
    }
    Ok(Obligation {
        rule: Rule::RaceFreedom,
        description: format!("{} never gets stuck (push/pull DRF)", iface.name),
        cases_checked,
        cases_skipped,
        cases_reduced,
    })
}

/// Counts how many of the given interleavings race (get stuck). Useful as
/// a negative control: unlocked access should race on some interleavings.
pub fn count_racy_interleavings(
    iface: &LayerInterface,
    focused: &PidSet,
    programs: &BTreeMap<Pid, ThreadScript>,
    contexts: &[EnvContext],
    fuel: u64,
) -> usize {
    ccal_core::par::run_cases(
        contexts.len(),
        ccal_core::par::default_workers(),
        |ci| {
            let machine =
                ConcurrentMachine::new(iface.clone(), focused.clone(), contexts[ci].clone())
                    .with_fuel(fuel);
            matches!(
                machine.run(programs),
                Err(MachineError::Stuck(_)) | Err(MachineError::Replay(_))
            )
        },
        |_| false,
    )
    .into_iter()
    .filter(|racy| *racy == Some(true))
    .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_core::contexts::ContextGen;
    use ccal_core::id::Loc;
    use ccal_core::val::Val;
    use ccal_machine::mx86::mx86_hw_interface;

    fn contexts() -> Vec<EnvContext> {
        ContextGen::new(vec![Pid(0), Pid(1)])
            .with_schedule_len(4)
            .contexts()
    }

    fn pull_push_program() -> BTreeMap<Pid, ThreadScript> {
        let b = Val::Loc(Loc(0));
        let mut programs = BTreeMap::new();
        for c in 0..2 {
            programs.insert(
                Pid(c),
                vec![
                    ("pull".to_owned(), vec![b.clone()]),
                    ("push".to_owned(), vec![b.clone()]),
                ],
            );
        }
        programs
    }

    #[test]
    fn unlocked_sharing_races_on_some_interleavings() {
        let racy = count_racy_interleavings(
            &mx86_hw_interface(),
            &PidSet::from_pids([Pid(0), Pid(1)]),
            &pull_push_program(),
            &contexts(),
            50_000,
        );
        assert!(racy > 0, "fully preemptible pull/push must race somewhere");
    }

    #[test]
    fn race_check_reports_the_stuck_context() {
        let err = check_race_freedom(
            &mx86_hw_interface(),
            &PidSet::from_pids([Pid(0), Pid(1)]),
            &pull_push_program(),
            &contexts(),
            50_000,
        )
        .unwrap_err();
        assert!(matches!(err, LayerError::Mismatch { .. }));
    }

    #[test]
    fn disjoint_locations_are_race_free() {
        let mut programs = BTreeMap::new();
        for c in 0..2_u32 {
            let b = Val::Loc(Loc(c));
            programs.insert(
                Pid(c),
                vec![
                    ("pull".to_owned(), vec![b.clone()]),
                    ("push".to_owned(), vec![b]),
                ],
            );
        }
        let ob = check_race_freedom(
            &mx86_hw_interface(),
            &PidSet::from_pids([Pid(0), Pid(1)]),
            &programs,
            &contexts(),
            50_000,
        )
        .unwrap();
        assert!(ob.cases_checked > 0);
        assert_eq!(ob.rule, Rule::RaceFreedom);
    }
}
