//! Data-race-freedom checking via push/pull stuckness.
//!
//! "If a program tries to pull a not-free location, or tries to access or
//! push to a location not owned by the current CPU, a data race may occur
//! and the machine gets stuck. One goal of concurrent program verification
//! is to show that a program is data-race free; in our setting, we
//! accomplish this by showing that the program does not get stuck" (§3.1).
//!
//! [`check_race_freedom`] runs a multi-participant program under every
//! enumerated interleaving and asserts no run gets stuck. For a negative
//! control, [`count_racy_interleavings`] reports how many interleavings
//! *do* race (used by tests and by the benchmark harness to show that the
//! raw program races while the locked version does not).

use std::collections::BTreeMap;

use ccal_core::calculus::{LayerError, Obligation, Rule};
use ccal_core::conc::{ConcurrentMachine, ThreadScript};
use ccal_core::env::EnvContext;
use ccal_core::explore::{Case, ExploreOptions, Kernel};
use ccal_core::id::{Pid, PidSet};
use ccal_core::layer::LayerInterface;
use ccal_core::machine::MachineError;

/// Checks that no enumerated interleaving of `programs` over `iface` gets
/// stuck (races) — starvation under an unfair prefix is skipped, any
/// `Stuck`/`Replay` failure is a counterexample.
///
/// # Errors
///
/// [`LayerError::Mismatch`] naming the racing context;
/// [`LayerError::Machine`] on unrelated failures.
pub fn check_race_freedom(
    iface: &LayerInterface,
    focused: &PidSet,
    programs: &BTreeMap<Pid, ThreadScript>,
    contexts: &[EnvContext],
    fuel: u64,
) -> Result<Obligation, LayerError> {
    check_race_freedom_por(
        iface,
        focused,
        programs,
        contexts,
        fuel,
        ccal_core::por::por_enabled(),
    )
}

/// [`check_race_freedom`] with the partial-order reduction explicitly on
/// or off (contexts marked trace-equivalent by the generator are skipped
/// and counted as `cases_reduced` when `por` is true).
///
/// # Errors
///
/// As [`check_race_freedom`].
pub fn check_race_freedom_por(
    iface: &LayerInterface,
    focused: &PidSet,
    programs: &BTreeMap<Pid, ThreadScript>,
    contexts: &[EnvContext],
    fuel: u64,
    por: bool,
) -> Result<Obligation, LayerError> {
    check_race_freedom_tuned(
        iface,
        focused,
        programs,
        contexts,
        fuel,
        ccal_core::par::default_workers(),
        por,
        ccal_core::prefix::prefix_share_enabled(),
        ccal_core::prefix::prefix_deep_enabled(),
    )
}

/// [`check_race_freedom_por`] with an explicit worker count — `1` explores
/// the grid serially on the calling thread, the reference behavior the
/// forensics replay gate uses for bit-identical reproduction — and
/// explicit prefix-sharing of runs across contexts with common consumed
/// schedule prefixes (see [`ccal_core::prefix`]).
/// `deep_share` additionally snapshots the whole game state before every
/// scheduler decision ([`ccal_core::prefix::SnapshotTrie`]), so a context
/// diverging at turn `k` forks the deepest snapshot and replays only the
/// remaining turns; it is effective only when `prefix_share` is on.
///
/// # Errors
///
/// As [`check_race_freedom`].
#[allow(clippy::too_many_arguments)]
pub fn check_race_freedom_tuned(
    iface: &LayerInterface,
    focused: &PidSet,
    programs: &BTreeMap<Pid, ThreadScript>,
    contexts: &[EnvContext],
    fuel: u64,
    workers: usize,
    por: bool,
    prefix_share: bool,
    deep_share: bool,
) -> Result<Obligation, LayerError> {
    // The traced run is a deterministic function of the consumed schedule
    // prefix, so the kernel's game-run helper shares it across contexts
    // (memo + whole-`GameState` query-point snapshots); only the per-case
    // classification (which names the context index) is redone.
    let kernel: Kernel<ccal_core::conc::GameState, ccal_core::explore::GameRun> =
        Kernel::new(&ExploreOptions::tuned(workers, por, prefix_share, deep_share));
    let explored = kernel.explore("race", contexts, 1, |ci, _| {
        let env = &contexts[ci];
        let (res, log) = kernel.run_game(iface, focused, programs, env, fuel);
        let fail = |reason: String, err: LayerError| -> Case<(), LayerError> {
            Case::failed(err, log.clone(), reason, format!("context #{ci}"))
        };
        match res {
            Ok(_) => Case::Checked(()),
            Err(e) if e.is_invalid_context() => Case::Skipped,
            Err(MachineError::OutOfFuel { .. }) => Case::Skipped,
            Err(MachineError::Stuck(msg)) => fail(
                format!("stuck: {msg}"),
                LayerError::Mismatch {
                    expected: "a race-free run".to_owned(),
                    found: format!("stuck: {msg}"),
                    context: format!("race freedom, context #{ci}"),
                },
            ),
            Err(MachineError::Replay(e)) => fail(
                format!("replay stuck: {e}"),
                LayerError::Mismatch {
                    expected: "a race-free run".to_owned(),
                    found: format!("replay stuck: {e}"),
                    context: format!("race freedom, context #{ci}"),
                },
            ),
            Err(e) => {
                let reason = format!("machine failure: {e}");
                fail(reason, LayerError::Machine(e))
            }
        }
    });
    if let Some(e) = explored.failure {
        return Err(e);
    }
    Ok(Obligation {
        rule: Rule::RaceFreedom,
        description: format!("{} never gets stuck (push/pull DRF)", iface.name),
        cases_checked: explored.cases_checked,
        cases_skipped: explored.cases_skipped,
        cases_reduced: explored.cases_reduced,
    })
}

/// Counts how many of the given interleavings race (get stuck). Useful as
/// a negative control: unlocked access should race on some interleavings.
pub fn count_racy_interleavings(
    iface: &LayerInterface,
    focused: &PidSet,
    programs: &BTreeMap<Pid, ThreadScript>,
    contexts: &[EnvContext],
    fuel: u64,
) -> usize {
    ccal_core::par::run_cases(
        contexts.len(),
        ccal_core::par::default_workers(),
        |ci| {
            let machine =
                ConcurrentMachine::new(iface.clone(), focused.clone(), contexts[ci].clone())
                    .with_fuel(fuel);
            matches!(
                machine.run(programs),
                Err(MachineError::Stuck(_)) | Err(MachineError::Replay(_))
            )
        },
        |_| false,
    )
    .into_iter()
    .filter(|racy| *racy == Some(true))
    .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_core::contexts::ContextGen;
    use ccal_core::id::Loc;
    use ccal_core::val::Val;
    use ccal_machine::mx86::mx86_hw_interface;

    fn contexts() -> Vec<EnvContext> {
        ContextGen::new(vec![Pid(0), Pid(1)])
            .with_schedule_len(4)
            .contexts()
    }

    fn pull_push_program() -> BTreeMap<Pid, ThreadScript> {
        let b = Val::Loc(Loc(0));
        let mut programs = BTreeMap::new();
        for c in 0..2 {
            programs.insert(
                Pid(c),
                vec![
                    ("pull".to_owned(), vec![b.clone()]),
                    ("push".to_owned(), vec![b.clone()]),
                ],
            );
        }
        programs
    }

    #[test]
    fn unlocked_sharing_races_on_some_interleavings() {
        let racy = count_racy_interleavings(
            &mx86_hw_interface(),
            &PidSet::from_pids([Pid(0), Pid(1)]),
            &pull_push_program(),
            &contexts(),
            50_000,
        );
        assert!(racy > 0, "fully preemptible pull/push must race somewhere");
    }

    #[test]
    fn race_check_reports_the_stuck_context() {
        let err = check_race_freedom(
            &mx86_hw_interface(),
            &PidSet::from_pids([Pid(0), Pid(1)]),
            &pull_push_program(),
            &contexts(),
            50_000,
        )
        .unwrap_err();
        assert!(matches!(err, LayerError::Mismatch { .. }));
    }

    #[test]
    fn disjoint_locations_are_race_free() {
        let mut programs = BTreeMap::new();
        for c in 0..2_u32 {
            let b = Val::Loc(Loc(c));
            programs.insert(
                Pid(c),
                vec![
                    ("pull".to_owned(), vec![b.clone()]),
                    ("push".to_owned(), vec![b]),
                ],
            );
        }
        let ob = check_race_freedom(
            &mx86_hw_interface(),
            &PidSet::from_pids([Pid(0), Pid(1)]),
            &programs,
            &contexts(),
            50_000,
        )
        .unwrap();
        assert!(ob.cases_checked > 0);
        assert_eq!(ob.rule, Rule::RaceFreedom);
    }
}
