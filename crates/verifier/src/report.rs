//! Aggregated verification reports.
//!
//! A [`VerificationReport`] collects the certificates and standalone
//! obligations discharged while building a system (a layer tower like
//! Fig. 1), groups them by rule, and renders a human-readable summary —
//! the operational counterpart of "the world's first fully certified
//! concurrent OS kernel" coming with an inventory of what was proved
//! (§6).

use std::collections::BTreeMap;
use std::fmt;

use ccal_core::calculus::{Certificate, CertifiedLayer, Obligation, Rule};
use ccal_core::forensics::ShrinkNote;

/// One named section of the report (typically one object or theorem).
#[derive(Debug, Clone)]
pub struct ReportSection {
    /// Section title, e.g. `"ticket lock"`.
    pub title: String,
    /// The judgment, if the section wraps a certified layer.
    pub judgment: Option<String>,
    /// Obligations discharged in this section.
    pub obligations: Vec<Obligation>,
    /// Shrink accounting for counterexamples minimized while this section
    /// was checked (empty for passing sections).
    pub forensics: Vec<ShrinkNote>,
}

/// A whole-system verification report.
#[derive(Debug, Clone, Default)]
pub struct VerificationReport {
    sections: Vec<ReportSection>,
}

impl VerificationReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a certified layer as a section.
    pub fn with_layer(mut self, title: &str, layer: &CertifiedLayer) -> Self {
        self.sections.push(ReportSection {
            title: title.to_owned(),
            judgment: Some(layer.judgment()),
            obligations: layer.certificate.obligations().to_vec(),
            forensics: layer.certificate.shrink_notes().to_vec(),
        });
        self
    }

    /// Adds a bare certificate as a section.
    pub fn with_certificate(mut self, title: &str, certificate: &Certificate) -> Self {
        self.sections.push(ReportSection {
            title: title.to_owned(),
            judgment: None,
            obligations: certificate.obligations().to_vec(),
            forensics: certificate.shrink_notes().to_vec(),
        });
        self
    }

    /// Adds standalone obligations (soundness, linking, liveness, ...) as
    /// a section.
    pub fn with_obligations(mut self, title: &str, obligations: Vec<Obligation>) -> Self {
        self.sections.push(ReportSection {
            title: title.to_owned(),
            judgment: None,
            obligations,
            forensics: Vec::new(),
        });
        self
    }

    /// Adds a failure-forensics section: shrink notes produced while
    /// minimizing counterexamples into trace artifacts.
    pub fn with_forensics(mut self, title: &str, notes: Vec<ShrinkNote>) -> Self {
        self.sections.push(ReportSection {
            title: title.to_owned(),
            judgment: None,
            obligations: Vec::new(),
            forensics: notes,
        });
        self
    }

    /// The sections, in insertion order.
    pub fn sections(&self) -> &[ReportSection] {
        &self.sections
    }

    /// Total executed checking cases.
    pub fn total_cases(&self) -> usize {
        self.sections
            .iter()
            .flat_map(|s| &s.obligations)
            .map(|o| o.cases_checked)
            .sum()
    }

    /// Obligation counts grouped by rule, across all sections.
    pub fn by_rule(&self) -> BTreeMap<Rule, usize> {
        let mut out = BTreeMap::new();
        for o in self.sections.iter().flat_map(|s| &s.obligations) {
            *out.entry(o.rule).or_default() += 1;
        }
        out
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verification report: {} sections, {} cases",
            self.sections.len(),
            self.total_cases()
        )?;
        for s in &self.sections {
            writeln!(f, "\n[{}]", s.title)?;
            if let Some(j) = &s.judgment {
                writeln!(f, "  judgment: {j}")?;
            }
            for o in &s.obligations {
                writeln!(f, "  {o}")?;
            }
            for n in &s.forensics {
                writeln!(f, "  {n}")?;
            }
        }
        writeln!(f, "\nby rule:")?;
        for (rule, n) in self.by_rule() {
            writeln!(f, "  {rule:<22} {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_core::calculus::{empty, Obligation};
    use ccal_core::id::{Pid, PidSet};
    use ccal_core::layer::LayerInterface;

    fn dummy_layer() -> CertifiedLayer {
        empty(
            &LayerInterface::builder("L").build(),
            PidSet::singleton(Pid(0)),
        )
    }

    #[test]
    fn report_collects_and_groups() {
        let report = VerificationReport::new()
            .with_layer("object A", &dummy_layer())
            .with_obligations(
                "soundness",
                vec![Obligation {
                    rule: Rule::Soundness,
                    description: "thm 2.2".into(),
                    cases_checked: 5,
                    cases_skipped: 0,
                    cases_reduced: 0,
                }],
            );
        assert_eq!(report.sections().len(), 2);
        assert_eq!(report.total_cases(), 5);
        let by_rule = report.by_rule();
        assert_eq!(by_rule[&Rule::Empty], 1);
        assert_eq!(by_rule[&Rule::Soundness], 1);
    }

    #[test]
    fn report_renders_forensics_sections() {
        let report = VerificationReport::new().with_forensics(
            "shrunk counterexamples",
            vec![ShrinkNote {
                checker: "sim".into(),
                object: "scratch-sensitive".into(),
                original_steps: 40,
                minimized_steps: 5,
                iterations: 63,
                artifact: "forensics/sim-scratch-sensitive-deadbeef.json".into(),
            }],
        );
        let s = report.to_string();
        assert!(s.contains("[shrunk counterexamples]"));
        assert!(s.contains("40 → 5 steps"));
    }

    #[test]
    fn report_renders_judgments_and_rules() {
        let report = VerificationReport::new().with_layer("A", &dummy_layer());
        let s = report.to_string();
        assert!(s.contains("[A]"));
        assert!(s.contains("judgment: L{p0} ⊢_id ∅ : L{p0}"));
        assert!(s.contains("by rule:"));
    }
}
