//! Sequential (multi-call) refinement checking.
//!
//! The `Fun`-rule checker in `ccal-core` verifies one primitive invocation
//! from the initial state. Stateful objects — queues, schedulers — need
//! *sequences* of operations checked against their specifications, because
//! interesting behavior only appears from non-initial states ("the queue
//! is represented as a logical list in the specification, while it is
//! implemented as a doubly linked list", §6). [`check_sequence_refinement`]
//! runs whole operation scripts on a single machine pair and compares
//! every return value and the final logs through the simulation relation.

use ccal_core::calculus::{LayerError, Obligation, Rule};
use ccal_core::env::EnvContext;
use ccal_core::explore::{Case, ExploreOptions, Kernel};
use ccal_core::id::Pid;
use ccal_core::layer::LayerInterface;
use ccal_core::machine::LayerMachine;
use ccal_core::sim::{replay_env, SimRelation};
use ccal_core::val::Val;

/// A script of operations for sequence checking.
pub type OpScript = Vec<(String, Vec<Val>)>;

/// Checks that the implementation interface refines the specification
/// interface on whole operation scripts: for every context and script, the
/// two machines return the same values call-for-call, and the final logs
/// are related by `relation`. The spec run's environment is derived from
/// the implementation run by abstraction + replay, as in Def. 2.1.
///
/// # Errors
///
/// [`LayerError::Mismatch`] on the first disagreeing case;
/// [`LayerError::Machine`] if a run fails outright.
pub fn check_sequence_refinement(
    impl_iface: &LayerInterface,
    spec_iface: &LayerInterface,
    relation: &SimRelation,
    pid: Pid,
    contexts: &[EnvContext],
    scripts: &[OpScript],
    fuel: u64,
) -> Result<Obligation, LayerError> {
    check_sequence_refinement_por(
        impl_iface,
        spec_iface,
        relation,
        pid,
        contexts,
        scripts,
        fuel,
        ccal_core::por::por_enabled(),
    )
}

/// [`check_sequence_refinement`] with the partial-order reduction
/// explicitly on or off (contexts marked trace-equivalent by the generator
/// are skipped and counted as `cases_reduced` when `por` is true).
///
/// # Errors
///
/// As [`check_sequence_refinement`].
#[allow(clippy::too_many_arguments)]
pub fn check_sequence_refinement_por(
    impl_iface: &LayerInterface,
    spec_iface: &LayerInterface,
    relation: &SimRelation,
    pid: Pid,
    contexts: &[EnvContext],
    scripts: &[OpScript],
    fuel: u64,
    por: bool,
) -> Result<Obligation, LayerError> {
    check_sequence_refinement_tuned(
        impl_iface,
        spec_iface,
        relation,
        pid,
        contexts,
        scripts,
        fuel,
        ccal_core::par::default_workers(),
        por,
        ccal_core::prefix::prefix_share_enabled(),
        ccal_core::prefix::prefix_deep_enabled(),
    )
}

/// [`check_sequence_refinement_por`] with an explicit worker count — `1`
/// explores the grid serially on the calling thread, the reference
/// behavior the forensics replay gate uses for bit-identical reproduction
/// — and explicit prefix-sharing of impl-machine runs across contexts with
/// common consumed schedule prefixes (see [`ccal_core::prefix`]).
/// `deep_share` additionally snapshots the impl machine mid-script at
/// every environment query point ([`ccal_core::prefix::SnapshotTrie`]), so
/// contexts diverging mid-call replay only their schedule suffix; it is
/// effective only when `prefix_share` is on.
///
/// # Errors
///
/// As [`check_sequence_refinement`].
#[allow(clippy::too_many_arguments)]
pub fn check_sequence_refinement_tuned(
    impl_iface: &LayerInterface,
    spec_iface: &LayerInterface,
    relation: &SimRelation,
    pid: Pid,
    contexts: &[EnvContext],
    scripts: &[OpScript],
    fuel: u64,
    workers: usize,
    por: bool,
    prefix_share: bool,
    deep_share: bool,
) -> Result<Obligation, LayerError> {
    // The impl-machine run is a deterministic function of the consumed
    // schedule prefix and the script index, so it is shared across contexts
    // via the kernel's prefix memo. The spec phase replays the abstracted
    // impl log (context-independent) and is recomputed per case: its
    // environment is derived from the memoized impl log, so recomputation
    // is deterministic.
    #[allow(clippy::items_after_statements)]
    #[derive(Clone)]
    enum ImplRun {
        Skipped,
        Failed {
            log: ccal_core::log::Log,
            err: ccal_core::machine::MachineError,
        },
        Done {
            log: ccal_core::log::Log,
            rets: Vec<Val>,
        },
    }
    // A query-point snapshot of the impl machine mid-script (deep
    // sharing): the in-flight run of script call `extra.0`, with the
    // return values of the calls already completed in `extra.1`.
    #[allow(clippy::items_after_statements)]
    type SeqSnap = ccal_core::explore::RunSnap<(usize, Vec<Val>)>;
    let nscripts = scripts.len();
    let kernel: Kernel<SeqSnap, ImplRun> =
        Kernel::new(&ExploreOptions::tuned(workers, por, prefix_share, deep_share));
    let sched_consumed =
        |m: &LayerMachine| m.log.iter().filter(|e| e.is_sched()).count();
    // Sequence-refinement convergence fingerprint: the machine fingerprint
    // alone is not canonical mid-script — two cuts can agree on machine
    // state yet sit at different script positions or carry different
    // completed return values (which are not part of the machine). Extend
    // the fingerprint with both so a hit implies the donor's prefix rets
    // equal the borrower's.
    let seq_fp = |mach: &LayerMachine,
                  r: &dyn ccal_core::layer::PrimRun,
                  call: usize,
                  rets: &[Val]|
     -> Option<ccal_core::fingerprint::ContentHash> {
        let fp = mach.conv_fingerprint(r)?;
        let mut h = ccal_core::fingerprint::ContentHasher::new();
        h.section("ccal.conv.seqref.v1");
        h.bytes("machine.fp", &fp.0.to_le_bytes());
        h.usize("script.call", call);
        h.usize("script.nrets", rets.len());
        for (i, v) in rets.iter().enumerate() {
            h.val(&format!("script.ret[{i}]"), v);
        }
        Some(h.finish())
    };
    // Grafts a convergence donor's suffix log onto the borrower's executed
    // prefix (`m` is parked exactly at the cut). The donor's rets are
    // reused wholesale: the fingerprint pins the prefix rets equal, and
    // the suffix is deterministic from the cut.
    let graft_impl = |m: &LayerMachine, donor: ImplRun, donor_cut: usize| -> ImplRun {
        let graft = |donor_log: &ccal_core::log::Log| {
            let mut log = m.log.clone();
            log.append_all(donor_log.suffix_from(donor_cut).cloned());
            log
        };
        match donor {
            ImplRun::Skipped => ImplRun::Skipped,
            ImplRun::Failed { log, err } => ImplRun::Failed {
                log: graft(&log),
                err,
            },
            ImplRun::Done { log, rets } => ImplRun::Done {
                log: graft(&log),
                rets,
            },
        }
    };
    // Runs script `si` on `m` from call index `first` (finishing `inflight`
    // first when resuming a snapshot), capturing a snapshot at every query
    // point when deep sharing is on and probing the convergence cache when
    // dedup is on. Returns the completed return values, or the aborted
    // outcome — paired with `Some(donor consumed depth)` on a convergence
    // hit (the caller memoizes at that depth, not the cut's). Cuts passed
    // without a hit are pushed onto `probes` for the caller to seed.
    let run_script = |m: &mut LayerMachine,
                      si: usize,
                      first: usize,
                      inflight: Option<Box<dyn ccal_core::layer::PrimRun>>,
                      mut rets: Vec<Val>,
                      key: Option<&ccal_core::prefix::ScheduleKey>,
                      conv_key: Option<&ccal_core::prefix::ScheduleKey>,
                      probes: &mut Vec<(ccal_core::fingerprint::ContentHash, usize, usize)>|
     -> Result<Vec<Val>, (ImplRun, Option<usize>)> {
        let script = &scripts[si];
        let mut next = first;
        let mut conv: Option<(ImplRun, usize)> = None;
        if let Some(run) = inflight {
            let before = rets.clone();
            let mut hook = |mach: &LayerMachine, r: &dyn ccal_core::layer::PrimRun| -> bool {
                if let Some(k) = key {
                    kernel.snapshot(k, si, sched_consumed(mach), || {
                        Some(SeqSnap {
                            machine: mach.fork(),
                            run: r.fork_run()?,
                            extra: (first, before.clone()),
                        })
                    });
                }
                if let Some(k) = conv_key {
                    let consumed = sched_consumed(mach);
                    if let Some(fp) = seq_fp(mach, r, first, &before) {
                        if let Some((donor, donor_cut, donor_consumed)) =
                            kernel.converged(k, si, consumed, fp)
                        {
                            conv = Some((graft_impl(mach, donor, donor_cut), donor_consumed));
                            return true;
                        }
                        probes.push((fp, consumed, mach.log.len()));
                    }
                }
                false
            };
            match m.resume_query_ctl(run, &mut hook) {
                Ok(Some(v)) => rets.push(v),
                Ok(None) => {
                    let (outcome, donor_consumed) =
                        conv.take().expect("an aborted call implies a convergence hit");
                    return Err((outcome, Some(donor_consumed)));
                }
                Err(e) if e.is_invalid_context() => return Err((ImplRun::Skipped, None)),
                Err(e) => {
                    return Err((
                        ImplRun::Failed {
                            log: m.log.clone(),
                            err: e,
                        },
                        None,
                    ));
                }
            }
            next = first + 1;
        }
        for (i, (name, args)) in script.iter().enumerate().skip(next) {
            let before = rets.clone();
            let mut hook = |mach: &LayerMachine, r: &dyn ccal_core::layer::PrimRun| -> bool {
                if let Some(k) = key {
                    kernel.snapshot(k, si, sched_consumed(mach), || {
                        Some(SeqSnap {
                            machine: mach.fork(),
                            run: r.fork_run()?,
                            extra: (i, before.clone()),
                        })
                    });
                }
                if let Some(k) = conv_key {
                    let consumed = sched_consumed(mach);
                    if let Some(fp) = seq_fp(mach, r, i, &before) {
                        if let Some((donor, donor_cut, donor_consumed)) =
                            kernel.converged(k, si, consumed, fp)
                        {
                            conv = Some((graft_impl(mach, donor, donor_cut), donor_consumed));
                            return true;
                        }
                        probes.push((fp, consumed, mach.log.len()));
                    }
                }
                false
            };
            let res = if key.is_some() || conv_key.is_some() {
                m.call_prim_ctl(name, args, &mut hook)
            } else {
                m.call_prim(name, args).map(Some)
            };
            match res {
                Ok(Some(v)) => rets.push(v),
                Ok(None) => {
                    let (outcome, donor_consumed) =
                        conv.take().expect("an aborted call implies a convergence hit");
                    return Err((outcome, Some(donor_consumed)));
                }
                Err(e) if e.is_invalid_context() => return Err((ImplRun::Skipped, None)),
                Err(e) => {
                    return Err((
                        ImplRun::Failed {
                            log: m.log.clone(),
                            err: e,
                        },
                        None,
                    ));
                }
            }
        }
        Ok(rets)
    };
    // Seals one executed (or converged) script run: records the executed
    // step work, seeds the convergence cache at every cut a *completed*
    // run passed through, and returns the consumed depth — the donor's on
    // a convergence hit.
    let seal_run = |m: &LayerMachine,
                    si: usize,
                    conv_key: Option<&ccal_core::prefix::ScheduleKey>,
                    probes: Vec<(ccal_core::fingerprint::ContentHash, usize, usize)>,
                    outcome: &ImplRun,
                    over: Option<usize>,
                    pre: u64|
     -> usize {
        ccal_core::prefix::record_steps(m.steps_taken() + m.log.len() as u64 - pre);
        let consumed = over.unwrap_or_else(|| sched_consumed(m));
        if over.is_none() {
            if let Some(k) = conv_key {
                for (fp, cut_consumed, cut_len) in probes {
                    kernel.converge_record(
                        k,
                        si,
                        cut_consumed,
                        fp,
                        cut_len,
                        consumed,
                        outcome.clone(),
                    );
                }
            }
        }
        consumed
    };
    let exec_impl = |env: &EnvContext, si: usize| -> (ImplRun, usize) {
        let conv_key = kernel.conv_key(env);
        let mut probes: Vec<(ccal_core::fingerprint::ContentHash, usize, usize)> = Vec::new();
        if let Some(k) = kernel.deep_key(env) {
            if let Some((_, SeqSnap { machine, run, extra: (call, rets) })) =
                kernel.resume_deepest(k, si)
            {
                // Fork the deepest snapshotted ancestor and execute only
                // the schedule suffix, counting only the suffix work.
                let mut m = machine.fork_with_env(env.clone());
                let pre = m.steps_taken() + m.log.len() as u64;
                let (outcome, over) = match run_script(
                    &mut m,
                    si,
                    call,
                    Some(run),
                    rets,
                    Some(k),
                    conv_key,
                    &mut probes,
                ) {
                    Ok(rets) => (
                        ImplRun::Done {
                            log: m.log.clone(),
                            rets,
                        },
                        None,
                    ),
                    Err(aborted) => aborted,
                };
                let consumed = seal_run(&m, si, conv_key, probes, &outcome, over, pre);
                return (outcome, consumed);
            }
        }
        let mut impl_machine =
            LayerMachine::new(impl_iface.clone(), pid, env.clone()).with_fuel(fuel);
        let (outcome, over) = match run_script(
            &mut impl_machine,
            si,
            0,
            None,
            Vec::new(),
            kernel.deep_key(env),
            conv_key,
            &mut probes,
        ) {
            Ok(rets) => (
                ImplRun::Done {
                    log: impl_machine.log.clone(),
                    rets,
                },
                None,
            ),
            Err(aborted) => aborted,
        };
        let consumed = seal_run(&impl_machine, si, conv_key, probes, &outcome, over, 0);
        (outcome, consumed)
    };
    let explored = kernel.explore("seqref", contexts, nscripts, |ci, si| {
        let env = &contexts[ci];
        let script = &scripts[si];
        let fail = |reason: String, log: &ccal_core::log::Log, err: LayerError| {
            Case::failed(err, log.clone(), reason, format!("context #{ci}, script #{si}"))
        };
        let (impl_log, impl_rets) = match kernel.run_shared(env, si, || exec_impl(env, si)) {
            ImplRun::Skipped => return Case::Skipped,
            ImplRun::Failed { log, err } => {
                let reason = format!("impl machine failure: {err}");
                return fail(reason, &log, LayerError::Machine(err));
            }
            ImplRun::Done { log, rets } => (log, rets),
        };
        let Some(expected) = relation.abstracted(&impl_log) else {
            return fail(
                format!("log not in domain of {}", relation.name()),
                &impl_log,
                LayerError::Mismatch {
                    expected: format!("log in domain of {}", relation.name()),
                    found: impl_log.to_string(),
                    context: format!("sequence refinement, context #{ci}, script #{si}"),
                },
            );
        };
        let mut spec_machine =
            LayerMachine::new(spec_iface.clone(), pid, replay_env(&expected, pid)).with_fuel(fuel);
        let mut spec_rets = Vec::with_capacity(script.len());
        for (name, args) in script {
            match spec_machine.call_prim(name, args) {
                Ok(v) => spec_rets.push(v),
                Err(e) if e.is_invalid_context() => return Case::Skipped,
                Err(e) => {
                    let reason = format!("spec machine failure: {e}");
                    return fail(reason, &impl_log, LayerError::Machine(e));
                }
            }
        }
        if impl_rets != spec_rets {
            return fail(
                format!("rets diverge: impl {impl_rets:?} vs spec {spec_rets:?}"),
                &impl_log,
                LayerError::Mismatch {
                    expected: format!("{spec_rets:?} (spec)"),
                    found: format!("{impl_rets:?} (impl)"),
                    context: format!("sequence refinement rets, context #{ci}, script #{si}"),
                },
            );
        }
        // `expected` already is the abstraction of the impl log, so
        // R(impl, spec) reduces to one comparison (no re-abstraction).
        if expected != spec_machine.log.without_sched() {
            return fail(
                "final logs diverge through the relation".to_owned(),
                &impl_log,
                LayerError::Mismatch {
                    expected: spec_machine.log.to_string(),
                    found: impl_log.to_string(),
                    context: format!("sequence refinement logs, context #{ci}, script #{si}"),
                },
            );
        }
        Case::Checked(())
    });
    if let Some(e) = explored.failure {
        return Err(e);
    }
    Ok(Obligation {
        rule: Rule::IfaceSim,
        description: format!(
            "{} ≤_{} {} on {} op scripts",
            impl_iface.name,
            relation.name(),
            spec_iface.name,
            scripts.len()
        ),
        cases_checked: explored.cases_checked,
        cases_skipped: explored.cases_skipped,
        cases_reduced: explored.cases_reduced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_core::contexts::ContextGen;
    use ccal_core::event::EventKind;
    use ccal_core::layer::PrimSpec;

    /// An "implementation" counter that stores state in the abstract state,
    /// and a "spec" counter that replays the log — sequence refinement
    /// relates them.
    fn impl_iface() -> LayerInterface {
        LayerInterface::builder("ctr-impl")
            .prim(PrimSpec::atomic("bump", |ctx, _| {
                let n = ctx.abs.get_or_undef("n").as_int().unwrap_or(0) + 1;
                ctx.abs.set("n", Val::Int(n));
                ctx.emit(EventKind::Prim("bump".into(), vec![]));
                Ok(Val::Int(n))
            }))
            .build()
    }

    fn spec_iface() -> LayerInterface {
        LayerInterface::builder("ctr-spec")
            .prim(PrimSpec::atomic("bump", |ctx, _| {
                ctx.emit(EventKind::Prim("bump".into(), vec![]));
                let n = ctx
                    .log
                    .iter()
                    .filter(|e| e.pid == ctx.pid && matches!(&e.kind, EventKind::Prim(p, _) if p == "bump"))
                    .count();
                Ok(Val::Int(n as i64))
            }))
            .build()
    }

    #[test]
    fn stateful_and_replay_counters_agree_on_scripts() {
        let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
            .with_schedule_len(2)
            .contexts();
        let scripts = vec![
            vec![("bump".to_owned(), vec![]); 3],
            vec![("bump".to_owned(), vec![])],
        ];
        let ob = check_sequence_refinement(
            &impl_iface(),
            &spec_iface(),
            &SimRelation::identity(),
            Pid(0),
            &contexts,
            &scripts,
            100_000,
        )
        .unwrap();
        assert!(ob.cases_checked > 0);
    }

    #[test]
    fn detects_divergence_mid_script() {
        // A broken spec that counts *all* pids' bumps diverges once the
        // env also bumps — but with an idle env it agrees; use a
        // deliberately wrong impl instead: skips every third increment.
        let broken = LayerInterface::builder("ctr-broken")
            .prim(PrimSpec::atomic("bump", |ctx, _| {
                let n = ctx.abs.get_or_undef("n").as_int().unwrap_or(0) + 1;
                ctx.abs.set("n", Val::Int(n));
                ctx.emit(EventKind::Prim("bump".into(), vec![]));
                Ok(Val::Int(if n >= 3 { n + 1 } else { n }))
            }))
            .build();
        let contexts = vec![ContextGen::new(vec![Pid(0)]).round_robin()];
        let scripts = vec![vec![("bump".to_owned(), vec![]); 4]];
        let err = check_sequence_refinement(
            &broken,
            &spec_iface(),
            &SimRelation::identity(),
            Pid(0),
            &contexts,
            &scripts,
            100_000,
        )
        .unwrap_err();
        assert!(matches!(err, LayerError::Mismatch { .. }));
    }
}
