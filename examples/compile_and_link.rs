//! The CompCertX pipeline (§5.5): compile the ticket lock from ClightX to
//! layered assembly, validate the translation over the layer machine,
//! print the generated listing, and demonstrate thread-safe linking with
//! the algebraic memory model (Fig. 12).
//!
//! Run with `cargo run --example compile_and_link`.

use std::sync::Arc;

use ccal::compcertx::{compcertx, simulate_threaded_linking, ValidateOptions};
use ccal::core::contexts::ContextGen;
use ccal::core::id::{Loc, Pid};
use ccal::core::val::Val;
use ccal::objects::ticket::{l0_interface, TicketEnvPlayer, M1_SOURCE};

fn main() {
    println!("== CompCertX: compiling the ticket lock ==\n{M1_SOURCE}");

    let b = Loc(0);
    let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(TicketEnvPlayer::new(Pid(1), b, 1)))
        .with_schedule_len(2)
        .contexts();
    let opts = ValidateOptions::new(contexts)
        .with_workload("acq", vec![vec![Val::Loc(b)]])
        .with_workload("rel", vec![vec![Val::Loc(b)]]);

    let compiled =
        compcertx("M1", M1_SOURCE, &l0_interface(), &opts).expect("compilation validates");

    for name in compiled.asm.fn_names() {
        println!("{}", compiled.asm.get(name).expect("listed function"));
    }
    println!("Translation validation certificate:\n{}", compiled.certificate);

    println!("== Thread-safe linking (§5.5, Fig. 12) ==");
    // Four threads allocate stack frames under an interleaved schedule;
    // the extended yield semantics inserts placeholder blocks so that the
    // private memories compose back into the CPU-local memory.
    let schedule: Vec<(u32, usize)> = vec![
        (0, 2),
        (1, 1),
        (2, 3),
        (0, 1),
        (3, 2),
        (1, 2),
        (2, 1),
    ];
    let out = simulate_threaded_linking(&schedule).expect("m1 ⊛ ... ⊛ mN ≃ m holds");
    println!(
        "  schedule slices: {}, CPU memory blocks: {}",
        schedule.len(),
        out.cpu_memory.nb()
    );
    for (tid, mem) in &out.thread_memories {
        let live = mem
            .iter()
            .filter(|(_, b)| !b.is_empty_placeholder())
            .count();
        println!(
            "  thread {tid}: {} blocks ({} live frames, {} placeholders)",
            mem.nb(),
            live,
            mem.nb() as usize - live
        );
    }
    println!("  {}", out.obligation);
    println!("\nThe composed thread memories reproduce the CPU-local memory exactly —");
    println!("the executable content of the algebraic memory model's axioms.");
}
