//! A two-thread producer/consumer pipeline over the certified IPC layer
//! (the top of Fig. 1), executed on the multi-participant game machine
//! with the full implementation stack underneath — queuing lock,
//! condition variables, mailbox — and the resulting global log printed.
//!
//! Run with `cargo run --example ipc_pipeline`.

use std::collections::BTreeMap;
use std::sync::Arc;

use ccal::core::conc::ConcurrentMachine;
use ccal::core::env::EnvContext;
use ccal::core::id::{Loc, Pid, PidSet, QId};
use ccal::core::strategy::RoundRobinScheduler;
use ccal::core::val::Val;
use ccal::objects::ipc::{ipc_underlay, replay_channel, IPC_SOURCE};

fn main() {
    let ch = Loc(6);
    println!("Producer/consumer over the certified IPC stack (channel {ch}):\n{IPC_SOURCE}");

    let module = ccal::clightx::clightx_module("Mipc", IPC_SOURCE).expect("IPC module parses");
    let iface = module.install(&ipc_underlay()).expect("IPC module installs");

    let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2)));
    let machine = ConcurrentMachine::new(iface, PidSet::from_pids([Pid(0), Pid(1)]), env)
        .with_fuel(500_000);

    let mut programs = BTreeMap::new();
    // Producer: send three messages.
    programs.insert(
        Pid(0),
        (1..=3)
            .map(|i| ("send".to_owned(), vec![Val::Loc(ch), Val::Int(i * 10)]))
            .collect(),
    );
    // Consumer: receive three messages (blocking on an empty mailbox).
    programs.insert(
        Pid(1),
        (0..3).map(|_| ("recv".to_owned(), vec![Val::Loc(ch)])).collect(),
    );

    let out = machine.run(&programs).expect("pipeline completes");

    println!("Consumer received: {:?}", out.rets[&Pid(1)]);
    assert_eq!(
        out.rets[&Pid(1)],
        vec![Val::Int(10), Val::Int(20), Val::Int(30)],
        "messages arrive in order"
    );
    assert!(
        replay_channel(&out.log, QId(ch.0)).is_empty(),
        "mailbox drained"
    );

    println!("\nGlobal log ({} events):", out.log.len());
    for e in out.log.iter().filter(|e| !e.is_sched()) {
        println!("  {e}");
    }
    println!("\nEvery shared interaction above is an observable event; the channel");
    println!("contents at any instant are a replay function of this log.");
}
