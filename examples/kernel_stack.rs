//! The full concurrent layer stack of Fig. 1: spinlocks → shared queues →
//! scheduler → queuing lock → condition variables → IPC — every layer
//! certified bottom-up, then composed across participants and checked
//! against the soundness theorem.
//!
//! Run with `cargo run --example kernel_stack`.

use std::sync::Arc;

use ccal::core::calculus::pcomp;
use ccal::core::contexts::ContextGen;
use ccal::core::id::{Loc, Pid, QId};
use ccal::core::refine::{check_contextual_refinement, ClientProgram};
use ccal::core::val::Val;
use ccal::objects::{condvar, ipc, mcs, qlock, sched, sharedq, ticket};

fn main() {
    let b = Loc(0);
    println!("Building the Fig. 1 layer tower, bottom-up:\n");

    // 1. Spinlocks (ticket + MCS, same atomic interface).
    let low = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(ticket::TicketEnvPlayer::new(Pid(1), b, 2)))
        .with_schedule_len(3)
        .contexts();
    let atomic = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(ticket::FooEnvPlayer::new(Pid(1), b, 2)))
        .with_schedule_len(3)
        .contexts();
    let ticket_stack = ticket::certify_ticket_stack(Pid(0), b, low, atomic.clone())
        .expect("ticket lock certifies");
    println!("  [spinlock/ticket] {}", ticket_stack.lock_layer.judgment());

    let mcs_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(mcs::McsEnvPlayer::new(Pid(1), b, 2)))
        .with_schedule_len(3)
        .contexts();
    let mcs_layer = mcs::certify_mcs_lock(Pid(0), b, mcs_ctx).expect("MCS lock certifies");
    println!("  [spinlock/MCS]    {}", mcs_layer.judgment());
    println!("                    (same atomic interface: interchangeable)");

    // 2. Shared queues over the atomic lock.
    let q = Loc(3);
    let q_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(sharedq::SharedQEnvPlayer::new(Pid(1), q, 2)))
        .with_schedule_len(3)
        .contexts();
    let q_layer = sharedq::certify_shared_queue(Pid(0), q, q_ctx).expect("shared queue certifies");
    println!("  [shared queue]    {}", q_layer.judgment());

    // 3. Scheduler (yield / sleep / wakeup, C + assembly cswitch).
    let s_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(sched::WakerEnvPlayer::new(Pid(1), QId(5), 2)))
        .with_schedule_len(3)
        .contexts();
    let s_layer = sched::certify_scheduler(Pid(0), QId(5), Loc(9), s_ctx)
        .expect("scheduler certifies");
    println!("  [scheduler]       {}", s_layer.judgment());

    // 4. Queuing lock (Fig. 11) over the thread-local interface.
    let l = Loc(4);
    let ql_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(qlock::QlockEnvPlayer::new(Pid(1), l, 2)))
        .with_schedule_len(3)
        .contexts();
    let ql_layer = qlock::certify_qlock(Pid(0), l, ql_ctx).expect("queuing lock certifies");
    println!("  [queuing lock]    {}", ql_layer.judgment());

    // 5. Condition variables.
    let cv_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(condvar::CvEnvPlayer::new(Pid(1), QId(8), l)))
        .with_schedule_len(3)
        .contexts();
    let cv_layer =
        condvar::certify_condvar(Pid(0), QId(8), l, cv_ctx).expect("condition variable certifies");
    println!("  [cond. variable]  {}", cv_layer.judgment());

    // 6. IPC at the top.
    let ch = Loc(6);
    let ipc_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(ipc::SenderEnvPlayer::new(Pid(1), ch, 2)))
        .with_schedule_len(3)
        .contexts();
    let ipc_layer = ipc::certify_ipc(Pid(0), ch, ipc_ctx).expect("IPC certifies");
    println!("  [IPC]             {}", ipc_layer.judgment());

    // Parallel composition + soundness at the client level (Fig. 4/5,
    // Thm 2.2) for the ticket stack.
    println!("\nParallel composition and the soundness theorem:");
    let low1 = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(0), Arc::new(ticket::TicketEnvPlayer::new(Pid(0), b, 2)))
        .with_schedule_len(3)
        .contexts();
    let atomic1 = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(0), Arc::new(ticket::FooEnvPlayer::new(Pid(0), b, 2)))
        .with_schedule_len(3)
        .contexts();
    let stack1 =
        ticket::certify_ticket_stack(Pid(1), b, low1, atomic1).expect("pid 1 certifies");
    let both = pcomp(&ticket_stack.full_stack, &stack1.full_stack)
        .expect("compatible layers compose");
    println!("  Pcomp:      {}", both.judgment());

    let mut client = ClientProgram::new();
    client.insert(Pid(0), vec![("foo".to_owned(), vec![Val::Loc(b)])]);
    client.insert(Pid(1), vec![("foo".to_owned(), vec![Val::Loc(b)])]);
    let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_schedule_len(4)
        .contexts();
    let soundness = check_contextual_refinement(&both, &client, &contexts, 200_000)
        .expect("soundness (Thm 2.2) holds");
    println!("  Soundness:  {soundness}");

    let total: usize = [
        &ticket_stack.full_stack.certificate,
        &mcs_layer.certificate,
        &q_layer.certificate,
        &s_layer.certificate,
        &ql_layer.certificate,
        &cv_layer.certificate,
        &ipc_layer.certificate,
    ]
    .iter()
    .map(|c| c.total_cases())
    .sum();
    println!("\nWhole tower certified: {total} checking cases discharged across 7 objects.");
}
