//! Quickstart: the ticket-lock walkthrough of the paper's §2 / Fig. 5.
//!
//! Builds and certifies the whole stack of Fig. 3 — the ticket lock `M1`
//! over the hardware interface `L0`, fun-lifted to the spin-visible
//! `L′1`, log-lifted to the atomic `L1`, and the client layer `M2`/`foo`
//! on top — printing each judgment and the accumulated certificate.
//!
//! Run with `cargo run --example quickstart`.

use std::sync::Arc;

use ccal::core::contexts::ContextGen;
use ccal::core::id::{Loc, Pid};
use ccal::objects::ticket::{
    certify_ticket_stack, FooEnvPlayer, TicketEnvPlayer, M1_SOURCE, M2_SOURCE,
};

fn main() {
    let b = Loc(0);
    println!("== The ticket lock of Fig. 3 / Fig. 10 (module M1) ==");
    println!("{M1_SOURCE}");
    println!("== The client layer of Fig. 3 (module M2) ==");
    println!("{M2_SOURCE}");

    // Environment contexts: every schedule prefix of length 3 over two
    // participants, with participant 1 contending for the same lock.
    let low = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(TicketEnvPlayer::new(Pid(1), b, 2)))
        .with_schedule_len(3)
        .contexts();
    let atomic = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(FooEnvPlayer::new(Pid(1), b, 2)))
        .with_schedule_len(3)
        .contexts();
    println!(
        "Checking over {} low-level and {} atomic environment contexts...\n",
        low.len(),
        atomic.len()
    );

    let stack = certify_ticket_stack(Pid(0), b, low, atomic)
        .expect("the ticket stack certifies");

    println!("Derivation (the pipeline of Fig. 5):");
    println!("  1. fun-lift:  {}", stack.fun_lift.judgment());
    println!(
        "  2. log-lift:  {} ≤_{} {}",
        stack.log_lift.lower.name,
        stack.log_lift.relation.name(),
        stack.log_lift.upper.name
    );
    println!("  3. weaken:    {}", stack.lock_layer.judgment());
    println!("  4. client:    {}", stack.client_layer.judgment());
    println!("  5. vcomp:     {}", stack.full_stack.judgment());

    println!("\n{}", stack.full_stack.certificate);
    println!("Every obligation above was discharged by the bounded simulation checker —");
    println!("the reproduction's executable stand-in for the paper's Coq proof objects.");
}
