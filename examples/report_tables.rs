//! Prints the Table 1 / Table 2 analogs and the B1 scaling comparison in
//! one run (the same generators the benchmark targets use).
//!
//! Run with `cargo run --release --example report_tables`.

fn main() {
    println!("{}", ccal_bench::tables::render_table1());
    println!("{}", ccal_bench::tables::render_table2());
    println!("{}", ccal_bench::scaling::render_scaling(&[2, 3, 4]));
}
