#!/usr/bin/env bash
# End-to-end exercise of the ccal-certd certification service over real
# processes and sockets:
#
#   stage 1 — daemon + two shard processes: a chunked ticket certification
#             runs entirely on the shards; recertifying the unchanged
#             stack is answered from the content-addressed store with
#             ZERO exploration steps.
#   stage 1b — a single shard certifies the two-unit qlock stack; the
#             second unit reports family_hits > 0, proving the semantic
#             ShareKey in the lease frame let it reuse the first unit's
#             warm exploration state.
#   stage 2 — a delayed shard is SIGKILLed mid-lease; the re-leased run
#             produces the bit-identical verdict and index-least
#             counterexample that the healthy baseline produced.
#   stage 3 — the CCAL_CERTD_CACHE=0 hatch forces recertification, and
#             the store survives daemon restarts (a fresh daemon on the
#             same directory answers with zero steps).
#
# Works without network access; everything binds 127.0.0.1 ephemeral
# ports.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/ccal-certd
if [ ! -x "$BIN" ]; then
  cargo build --release -p ccal-certd
fi

TMP=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

# start_daemon NAME [ENV=VAL ...] — starts a daemon on an ephemeral port
# with the shared store directory, waits for its port file, and leaves
# the address in $ADDR and the pid in $DAEMON_PID.
start_daemon() {
  local name=$1
  shift
  rm -f "$TMP/$name.port"
  env "$@" "$BIN" serve --store "$TMP/store" --port-file "$TMP/$name.port" \
    >"$TMP/$name.log" 2>&1 &
  DAEMON_PID=$!
  PIDS+=("$DAEMON_PID")
  for _ in $(seq 1 100); do
    [ -f "$TMP/$name.port" ] && break
    sleep 0.1
  done
  [ -f "$TMP/$name.port" ] || {
    echo "certd e2e: daemon $name never wrote its port file" >&2
    cat "$TMP/$name.log" >&2
    exit 1
  }
  ADDR=$(cat "$TMP/$name.port")
}

# start_shard [ENV=VAL ...] — connects a shard process to $ADDR; leaves
# its pid in $SHARD_PID.
start_shard() {
  env "$@" "$BIN" shard --connect "$ADDR" >/dev/null 2>&1 &
  SHARD_PID=$!
  PIDS+=("$SHARD_PID")
  # Drop the job-table entry so a SIGKILLed shard doesn't print an
  # asynchronous "Killed" notice into the verify log.
  disown "$SHARD_PID"
}

stop_daemon() {
  "$BIN" shutdown --connect "$ADDR"
  wait "$DAEMON_PID" 2>/dev/null || true
}

# total_steps FILE — the response's total_steps value.
total_steps() {
  sed -n 's/.*"total_steps": \([0-9]*\).*/\1/p' "$1" | head -1
}

# response_line FILE KEY — the first (top-level: units sort last) line
# holding "KEY": in the pretty JSON.
response_line() {
  grep "\"$2\":" "$1" | head -1
}

echo "-- certd stage 1: sharded certification, then a zero-step cache hit --"
start_daemon a
start_shard
start_shard
sleep 1 # let both shards connect and start polling
"$BIN" certify ticket --connect "$ADDR" --chunk-cases 3 --json >"$TMP/ticket1.json"
grep -q '"certified": true' "$TMP/ticket1.json"
grep -q '"cache_hits": 0' "$TMP/ticket1.json"
[ "$(total_steps "$TMP/ticket1.json")" -gt 0 ]
if grep -q '"remote_chunks": 0,' "$TMP/ticket1.json"; then
  echo "certd e2e: expected every chunk to run on a shard" >&2
  exit 1
fi
"$BIN" certify ticket --connect "$ADDR" --json >"$TMP/ticket2.json"
grep -q '"certified": true' "$TMP/ticket2.json"
[ "$(grep -c '"cache_hit": true' "$TMP/ticket2.json")" -eq 9 ]
[ "$(total_steps "$TMP/ticket2.json")" -eq 0 ]
# Healthy-shard baseline for the failing stack (exit 1 is the verdict).
"$BIN" certify scratch --connect "$ADDR" --no-cache --json >"$TMP/scratch_base.json" || true
grep -q '"certified": false' "$TMP/scratch_base.json"
stop_daemon

echo "-- certd stage 1b: semantic families share warm state across a request's units --"
# A single shard receives both qlock leases; the lease frame carries the
# semantic ShareKey, and both units hash to one family, so the second
# unit (rel_q) starts from the first unit's warm exploration state —
# family_hits must be nonzero for rel_q and zero for the family-opening
# acq_q.
start_daemon a2
start_shard
sleep 1 # let the shard connect and start polling
"$BIN" certify qlock --connect "$ADDR" --no-cache >"$TMP/qlock1.txt"
grep -q '^verdict: CERTIFIED' "$TMP/qlock1.txt"
grep -q '^unit acq_q: .*remote=1 .*family_hits=0$' "$TMP/qlock1.txt"
if grep -q '^unit rel_q: .*family_hits=0$' "$TMP/qlock1.txt"; then
  echo "certd e2e: rel_q did not reuse acq_q's warm family state" >&2
  grep '^unit ' "$TMP/qlock1.txt" >&2
  exit 1
fi
grep -q '^unit rel_q: .*remote=1 .*family_hits=[1-9]' "$TMP/qlock1.txt"
stop_daemon

echo "-- certd stage 2: SIGKILL a shard mid-lease; verdict and evidence unchanged --"
start_daemon b
start_shard CCAL_CERTD_SHARD_DELAY_MS=2000
sleep 1 # the shard is connected and will sleep 2s on its first lease
"$BIN" certify scratch --connect "$ADDR" --no-cache --chunk-cases 1 --json \
  >"$TMP/scratch_kill.json" &
CERT_PID=$!
sleep 1 # the shard now holds a lease and is mid-delay
kill -9 "$SHARD_PID"
wait "$CERT_PID" || true
grep -q '"certified": false' "$TMP/scratch_kill.json"
grep -q '"retries": [1-9]' "$TMP/scratch_kill.json"
for key in certified failed_unit failure; do
  base=$(response_line "$TMP/scratch_base.json" "$key")
  killed=$(response_line "$TMP/scratch_kill.json" "$key")
  if [ "$base" != "$killed" ]; then
    echo "certd e2e: $key diverged after the SIGKILL" >&2
    echo "  baseline: $base" >&2
    echo "  killed:   $killed" >&2
    exit 1
  fi
done
stop_daemon

echo "-- certd stage 3: CCAL_CERTD_CACHE=0 recertifies; the store survives restarts --"
start_daemon c CCAL_CERTD_CACHE=0
"$BIN" certify ticket --connect "$ADDR" --json >"$TMP/ticket3.json"
grep -q '"certified": true' "$TMP/ticket3.json"
grep -q '"cache_hits": 0' "$TMP/ticket3.json"
[ "$(total_steps "$TMP/ticket3.json")" -gt 0 ]
stop_daemon
start_daemon d
"$BIN" certify ticket --connect "$ADDR" --json >"$TMP/ticket4.json"
grep -q '"certified": true' "$TMP/ticket4.json"
[ "$(total_steps "$TMP/ticket4.json")" -eq 0 ]
stop_daemon

echo "certd e2e: all green"
