#!/usr/bin/env bash
# Offline verification: tier-1 (release build + root-package tests), the
# parallel-vs-serial differential suite, the full workspace tests, and a
# criterion-free benchmark smoke run. Everything here works without
# network access — proptest/criterion resolve to the in-repo shim crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: root-package tests =="
cargo test -q

echo "== differential: parallel + dedup engine vs serial =="
cargo test -q --test parallel_differential

echo "== workspace tests =="
cargo test --workspace -q

echo "== bench smoke (no criterion): composition_scaling --quick =="
cargo bench -p ccal-bench --no-default-features --bench composition_scaling -- --quick

echo "verify: all green"
