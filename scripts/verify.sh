#!/usr/bin/env bash
# Offline verification: tier-1 (release build + root-package tests), the
# parallel-vs-serial, POR, prefix-sharing, exploration-kernel,
# bytecode-tier, convergence-dedup, and semantic-sharing differential
# suites (each optimization both on and under its CCAL_POR=0 /
# CCAL_PREFIX_SHARE=0 / CCAL_PREFIX_DEEP=0 / CCAL_BYTECODE=0 /
# CCAL_STATE_DEDUP=0 / CCAL_SHARE_SEMANTIC=0 escape hatch; the kernel
# differential also reruns under the obsolete CCAL_KERNEL=0 hatch), the
# engine regression tests, the full workspace tests (on both execution
# tiers, with the convergence cache off, and with sharing keys pinned),
# and criterion-free benchmark smoke runs including the B5
# (whole-prefix), B5d (query-point snapshot), B6 (compiled ClightX
# bytecode VM), B7 (convergence dedup), and B8 (semantic sharing keys)
# step-ratio gates. Everything
# here works without network access — proptest/criterion resolve to the
# in-repo shim crates. Each stage reports its own wall time so perf
# regressions in the harness itself are visible.
set -euo pipefail
cd "$(dirname "$0")/.."

# stage DESCRIPTION COMMAND... — runs COMMAND (use `env VAR=... cmd` for
# per-stage environment overrides) and prints the stage's wall time.
stage() {
  local desc="$1"
  shift
  echo "== ${desc} =="
  local t0=$SECONDS
  "$@"
  echo "-- ${desc}: $((SECONDS - t0))s"
}

stage "tier-1: release build" \
  cargo build --release

stage "tier-1: root-package tests" \
  cargo test -q

stage "differential: parallel + dedup engine vs serial" \
  cargo test -q --test parallel_differential

stage "differential: POR-reduced grid vs full grid (all five checkers)" \
  cargo test -q --test por_differential

stage "differential: full grid re-checked with the escape hatch (CCAL_POR=0)" \
  env CCAL_POR=0 cargo test -q --test por_differential

stage "differential: prefix-sharing trie vs memo-free engine (all five checkers)" \
  cargo test -q --test prefix_differential

stage "differential: sharing disabled via the escape hatch (CCAL_PREFIX_SHARE=0)" \
  env CCAL_PREFIX_SHARE=0 cargo test -q --test prefix_differential

stage "differential: deep sharing disabled via the escape hatch (CCAL_PREFIX_DEEP=0)" \
  env CCAL_PREFIX_DEEP=0 cargo test -q --test prefix_differential

stage "differential: fork-vs-fresh snapshot resume (all snapshots x agreeing contexts)" \
  cargo test -q --test fork_differential

stage "differential: unified exploration kernel (all five checkers, ticket + qlock stacks)" \
  cargo test -q --test kernel_differential

stage "differential: kernel rerun under the obsolete escape hatch (CCAL_KERNEL=0 warns, stays on)" \
  env CCAL_KERNEL=0 cargo test -q --test kernel_differential

stage "differential: bytecode VM vs interpreter (random programs, proptest)" \
  cargo test -q -p ccal-clightx --test bytecode_differential

stage "differential: bytecode VM vs interpreter (all five checkers, ticket stack)" \
  cargo test -q -p ccal-objects --test bytecode_differential

stage "differential: bytecode VM vs interpreter (forensics captures + artifacts)" \
  cargo test -q -p ccal-forensics --test bytecode_differential

stage "differential: convergence dedup on vs off (all five checkers, evidence byte-identity)" \
  cargo test -q -p ccal-forensics --test convergence_differential

stage "differential: convergence differential under the escape hatch (CCAL_STATE_DEDUP=0)" \
  env CCAL_STATE_DEDUP=0 cargo test -q -p ccal-forensics --test convergence_differential

stage "differential: semantic sharing keys vs pinned families (all five checkers, both tiers, hostile aliasing)" \
  cargo test -q --test sharing_differential

stage "differential: sharing differential under the escape hatch (CCAL_SHARE_SEMANTIC=0)" \
  env CCAL_SHARE_SEMANTIC=0 cargo test -q --test sharing_differential

stage "regression: grid sampling, space_size, workers, cache cap" \
  cargo test -q -p ccal-core -- contexts:: par:: por:: sim::

stage "workspace tests" \
  cargo test --workspace -q

stage "workspace tests on the interpreter tier (escape hatch: CCAL_BYTECODE=0)" \
  env CCAL_BYTECODE=0 cargo test --workspace -q

stage "workspace tests with the convergence cache off (escape hatch: CCAL_STATE_DEDUP=0)" \
  env CCAL_STATE_DEDUP=0 cargo test --workspace -q

stage "workspace tests with pinned sharing keys (escape hatch: CCAL_SHARE_SEMANTIC=0)" \
  env CCAL_SHARE_SEMANTIC=0 cargo test --workspace -q

stage "forensics: shrink/replay selftest (all five checkers)" \
  cargo run -q --release -p ccal-forensics --bin ccal-replay -- --selftest

stage "forensics: golden corpus replay" \
  cargo run -q --release -p ccal-forensics --bin ccal-replay -- forensics/corpus

stage "bench smoke (no criterion): composition_scaling --quick" \
  cargo bench -p ccal-bench --no-default-features --bench composition_scaling -- --quick

stage "bench gate (no criterion): prefix_sharing --quick (asserts B5 share/off <= 0.5 and B5d deep/share <= 0.7 at L=5; writes BENCH_5.json)" \
  cargo bench -p ccal-bench --no-default-features --bench prefix_sharing -- --quick

stage "bench gate (no criterion): bytecode_vm --quick (asserts B6 vm/interp prim-steps <= 0.6 and exact atom-step tier equality at L=5; writes BENCH_6.json)" \
  cargo bench -p ccal-bench --no-default-features --bench bytecode_vm -- --quick

stage "bench gate (no criterion): convergence --quick (asserts B7 dedup/base atom-steps <= 0.6 at L=5 + per-checker hits; writes BENCH_7.json)" \
  cargo bench -p ccal-bench --no-default-features --bench convergence -- --quick

stage "bench gate (no criterion): sharing --quick (asserts B8 semantic/pinned atom-steps <= 0.5 at L=5 + per-unit family hits; writes BENCH_8.json)" \
  cargo bench -p ccal-bench --no-default-features --bench sharing -- --quick

stage "certd service e2e: sharded grid, zero-step cache hits, SIGKILL recovery, store persistence" \
  scripts/certd_e2e.sh

echo "verify: all green"
