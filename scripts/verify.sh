#!/usr/bin/env bash
# Offline verification: tier-1 (release build + root-package tests), the
# parallel-vs-serial, POR, prefix-sharing, exploration-kernel, and
# bytecode-tier differential suites (each optimization both on and under
# its CCAL_POR=0 / CCAL_PREFIX_SHARE=0 / CCAL_PREFIX_DEEP=0 /
# CCAL_BYTECODE=0 escape hatch; the kernel differential also reruns under
# the obsolete CCAL_KERNEL=0 hatch), the engine regression tests, the full workspace tests (on both
# execution tiers), and criterion-free benchmark smoke runs including the
# B5 (whole-prefix), B5d (query-point snapshot), and B6 (compiled ClightX
# bytecode VM) step-ratio gates. Everything here works without network
# access — proptest/criterion resolve to the in-repo shim crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: root-package tests =="
cargo test -q

echo "== differential: parallel + dedup engine vs serial =="
cargo test -q --test parallel_differential

echo "== differential: POR-reduced grid vs full grid (all five checkers) =="
cargo test -q --test por_differential

echo "== differential: full grid re-checked with the escape hatch (CCAL_POR=0) =="
CCAL_POR=0 cargo test -q --test por_differential

echo "== differential: prefix-sharing trie vs memo-free engine (all five checkers) =="
cargo test -q --test prefix_differential

echo "== differential: sharing disabled via the escape hatch (CCAL_PREFIX_SHARE=0) =="
CCAL_PREFIX_SHARE=0 cargo test -q --test prefix_differential

echo "== differential: deep sharing disabled via the escape hatch (CCAL_PREFIX_DEEP=0) =="
CCAL_PREFIX_DEEP=0 cargo test -q --test prefix_differential

echo "== differential: fork-vs-fresh snapshot resume (all snapshots x agreeing contexts) =="
cargo test -q --test fork_differential

echo "== differential: unified exploration kernel (all five checkers, ticket + qlock stacks) =="
cargo test -q --test kernel_differential

echo "== differential: kernel rerun under the obsolete escape hatch (CCAL_KERNEL=0 warns, stays on) =="
CCAL_KERNEL=0 cargo test -q --test kernel_differential

echo "== differential: bytecode VM vs interpreter (random programs, proptest) =="
cargo test -q -p ccal-clightx --test bytecode_differential

echo "== differential: bytecode VM vs interpreter (all five checkers, ticket stack) =="
cargo test -q -p ccal-objects --test bytecode_differential

echo "== differential: bytecode VM vs interpreter (forensics captures + artifacts) =="
cargo test -q -p ccal-forensics --test bytecode_differential

echo "== regression: grid sampling, space_size, workers, cache cap =="
cargo test -q -p ccal-core -- contexts:: par:: por:: sim::

echo "== workspace tests =="
cargo test --workspace -q

echo "== workspace tests on the interpreter tier (escape hatch: CCAL_BYTECODE=0) =="
CCAL_BYTECODE=0 cargo test --workspace -q

echo "== forensics: shrink/replay selftest (all five checkers) =="
cargo run -q --release -p ccal-forensics --bin ccal-replay -- --selftest

echo "== forensics: golden corpus replay =="
cargo run -q --release -p ccal-forensics --bin ccal-replay -- forensics/corpus

echo "== bench smoke (no criterion): composition_scaling --quick =="
cargo bench -p ccal-bench --no-default-features --bench composition_scaling -- --quick

echo "== bench gate (no criterion): prefix_sharing --quick (asserts B5 share/off <= 0.5 and B5d deep/share <= 0.7 at L=5; writes BENCH_5.json) =="
cargo bench -p ccal-bench --no-default-features --bench prefix_sharing -- --quick

echo "== bench gate (no criterion): bytecode_vm --quick (asserts B6 vm/interp prim-steps <= 0.6 and exact atom-step tier equality at L=5; writes BENCH_6.json) =="
cargo bench -p ccal-bench --no-default-features --bench bytecode_vm -- --quick

echo "== certd service e2e: sharded grid, zero-step cache hits, SIGKILL recovery, store persistence =="
scripts/certd_e2e.sh

echo "verify: all green"
