#!/usr/bin/env bash
# Offline verification: tier-1 (release build + root-package tests), the
# parallel-vs-serial and POR differential suites (the latter both with the
# reduction on and under the CCAL_POR=0 escape hatch), the engine
# regression tests, the full workspace tests, and a criterion-free
# benchmark smoke run. Everything here works without network access —
# proptest/criterion resolve to the in-repo shim crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: root-package tests =="
cargo test -q

echo "== differential: parallel + dedup engine vs serial =="
cargo test -q --test parallel_differential

echo "== differential: POR-reduced grid vs full grid (all five checkers) =="
cargo test -q --test por_differential

echo "== differential: full grid re-checked with the escape hatch (CCAL_POR=0) =="
CCAL_POR=0 cargo test -q --test por_differential

echo "== regression: grid sampling, space_size, workers, cache cap =="
cargo test -q -p ccal-core -- contexts:: par:: por:: sim::

echo "== workspace tests =="
cargo test --workspace -q

echo "== forensics: shrink/replay selftest (all five checkers) =="
cargo run -q --release -p ccal-forensics --bin ccal-replay -- --selftest

echo "== forensics: golden corpus replay =="
cargo run -q --release -p ccal-forensics --bin ccal-replay -- forensics/corpus

echo "== bench smoke (no criterion): composition_scaling --quick =="
cargo bench -p ccal-bench --no-default-features --bench composition_scaling -- --quick

echo "verify: all green"
