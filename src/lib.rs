//! # ccal — Certified Concurrent Abstraction Layers, in Rust
//!
//! Facade crate for the reproduction of *"Certified Concurrent
//! Abstraction Layers"* (Gu et al., PLDI 2018). Re-exports the component
//! crates and hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`).
//!
//! Start with [`core`]'s crate docs for the model, then
//! `examples/quickstart.rs` for the ticket-lock walkthrough of the
//! paper's §2.

pub use ccal_clightx as clightx;
pub use ccal_compcertx as compcertx;
pub use ccal_core as core;
pub use ccal_forensics as forensics;
pub use ccal_machine as machine;
pub use ccal_objects as objects;
pub use ccal_verifier as verifier;
