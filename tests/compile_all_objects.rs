//! CompCertX across the whole object suite: every ClightX module of the
//! Fig. 1 tower compiles to layered assembly and validates against its
//! interpreted semantics over its own underlay — "certified C layers can
//! be compiled into certified assembly layers" (§2), object by object.

use std::sync::Arc;

use ccal::compcertx::{compcertx, ValidateOptions};
use ccal::core::contexts::ContextGen;
use ccal::core::id::{Loc, Pid};
use ccal::core::val::Val;
use ccal::objects::{condvar, ipc, localq, qlock, sharedq, ticket};

fn rr_contexts() -> Vec<ccal::core::env::EnvContext> {
    vec![ContextGen::new(vec![Pid(0), Pid(1)]).round_robin()]
}

#[test]
fn ticket_lock_compiles_and_validates() {
    let b = Loc(0);
    let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(ticket::TicketEnvPlayer::new(Pid(1), b, 1)))
        .with_schedule_len(2)
        .contexts();
    let opts = ValidateOptions::new(contexts)
        .with_workload("acq", vec![vec![Val::Loc(b)]])
        .with_workload("rel", vec![vec![Val::Loc(b)]]);
    let compiled =
        compcertx("M1", ticket::M1_SOURCE, &ticket::l0_interface(), &opts).expect("validates");
    assert_eq!(compiled.asm.fn_names(), vec!["acq", "rel"]);
}

#[test]
fn local_queue_compiles_and_validates() {
    let opts = ValidateOptions::new(rr_contexts())
        .with_workload("enq_t", vec![vec![Val::Int(0), Val::Int(7)]])
        .with_workload("deq_t", vec![vec![Val::Int(0)]]);
    let compiled = compcertx(
        "Mlq",
        localq::LOCALQ_SOURCE,
        &localq::node_pool_interface(),
        &opts,
    )
    .expect("validates");
    assert!(compiled.certificate.total_cases() > 0);
}

#[test]
fn shared_queue_compiles_and_validates() {
    let q = Loc(3);
    let opts = ValidateOptions::new(rr_contexts())
        .with_workload("enQ", vec![vec![Val::Loc(q), Val::Int(9)]])
        .with_workload("deQ", vec![vec![Val::Loc(q)]]);
    let compiled = compcertx(
        "Mq",
        sharedq::SHAREDQ_SOURCE,
        &sharedq::sharedq_underlay(),
        &opts,
    )
    .expect("validates");
    assert_eq!(compiled.asm.fn_names(), vec!["deQ", "enQ"]);
}

#[test]
fn qlock_compiles_and_validates() {
    let l = Loc(4);
    let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(qlock::QlockEnvPlayer::new(Pid(1), l, 1)))
        .with_schedule_len(2)
        .contexts();
    let opts = ValidateOptions::new(contexts)
        .with_workload("acq_q", vec![vec![Val::Loc(l)]])
        .with_workload("rel_q", vec![vec![Val::Loc(l)]]);
    // rel_q without holding is stuck in both semantics: the validator
    // accepts matching failure classes, so the plain workload suffices.
    let compiled =
        compcertx("Mql", qlock::QLOCK_SOURCE, &qlock::qlock_underlay(), &opts).expect("validates");
    assert!(compiled.certificate.total_cases() > 0);
}

#[test]
fn condvar_compiles_and_validates() {
    let l = Loc(4);
    let cv = Loc(8);
    let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(
            Pid(1),
            Arc::new(condvar::CvEnvPlayer::new(
                Pid(1),
                ccal::core::id::QId(cv.0),
                l,
            )),
        )
        .with_schedule_len(2)
        .contexts();
    let opts = ValidateOptions::new(contexts)
        .with_workload("cv_signal", vec![vec![Val::Loc(cv)]])
        .with_workload("cv_broadcast", vec![vec![Val::Loc(cv)]])
        // cv_wait needs to hold the qlock first; exercised separately via
        // certification — here we validate the signal paths and the
        // broadcast, which are straight-line.
        .with_workload("cv_wait", vec![]);
    let compiled = compcertx(
        "Mcv",
        condvar::CONDVAR_SOURCE,
        &condvar::condvar_underlay(),
        &opts,
    )
    .expect("validates");
    assert_eq!(compiled.asm.fn_names(), vec!["cv_broadcast", "cv_signal", "cv_wait"]);
}

#[test]
fn ipc_compiles_and_validates() {
    let ch = Loc(6);
    let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(ipc::SenderEnvPlayer::new(Pid(1), ch, 1)))
        .with_schedule_len(2)
        .contexts();
    let opts = ValidateOptions::new(contexts)
        .with_workload("send", vec![vec![Val::Loc(ch), Val::Int(3)]])
        .with_workload("recv", vec![vec![Val::Loc(ch)]]);
    let compiled =
        compcertx("Mipc", ipc::IPC_SOURCE, &ipc::ipc_underlay(), &opts).expect("validates");
    assert!(compiled.certificate.total_cases() > 0);
}

#[test]
fn compiled_listings_are_printable() {
    // The disassembly of the whole tower is well-formed text (smoke test
    // for the Display impls the compile_and_link example relies on).
    let opts = ValidateOptions::new(rr_contexts())
        .with_workload("enq_t", vec![vec![Val::Int(0), Val::Int(1)]])
        .with_workload("deq_t", vec![vec![Val::Int(0)]]);
    let compiled = compcertx(
        "Mlq",
        localq::LOCALQ_SOURCE,
        &localq::node_pool_interface(),
        &opts,
    )
    .expect("validates");
    for name in compiled.asm.fn_names() {
        let listing = compiled.asm.get(name).expect("listed").to_string();
        assert!(listing.contains("ret"), "{listing}");
    }
}
