//! Experiment F3: the §2 walkthrough of Fig. 3, executed.
//!
//! The paper runs the client `P` (two participants, each calling `foo`)
//! over the low-level interface under the scheduler
//! "1, 2, 2, 1, 1, 2, 1, 2, 1, 1, 2, 2", obtaining the log `l′g`, and
//! shows that the relation `R1` maps it to the atomic-level log
//! `lg = (1.acq)•(1.f)•(1.g)•(1.rel)•(2.acq)` with "the order of lock
//! acquiring and the resulting shared state ... exactly the same". These
//! tests replay the same story on the executable machines.

use std::collections::BTreeMap;
use std::sync::Arc;

use ccal::core::conc::ConcurrentMachine;
use ccal::core::env::EnvContext;
use ccal::core::event::EventKind;
use ccal::core::id::{Loc, Pid, PidSet};
use ccal::core::replay::{replay_atomic_lock, replay_ticket};
use ccal::core::strategy::ScriptScheduler;
use ccal::core::val::Val;
use ccal::objects::ticket::{l0_interface, m1_module, r1_relation};

const B: Loc = Loc(0);

fn foo_client() -> BTreeMap<Pid, Vec<(String, Vec<Val>)>> {
    // T1() { foo(); }  T2() { foo(); } — with foo inlined to its Fig. 3
    // body (acq; f; g; rel) so we exercise the M1 implementation events.
    let script = |_: u32| {
        vec![
            ("acq".to_owned(), vec![Val::Loc(B)]),
            ("f".to_owned(), vec![]),
            ("g".to_owned(), vec![]),
            ("rel".to_owned(), vec![Val::Loc(B)]),
        ]
    };
    let mut programs = BTreeMap::new();
    programs.insert(Pid(1), script(1));
    programs.insert(Pid(2), script(2));
    programs
}

fn run_with_schedule(schedule: Vec<Pid>) -> ccal::core::conc::ConcurrentOutcome {
    let iface = m1_module()
        .expect("M1 parses")
        .install(&l0_interface())
        .expect("M1 installs");
    let env = EnvContext::new(Arc::new(ScriptScheduler::new(
        schedule,
        vec![Pid(1), Pid(2)],
    )));
    let machine = ConcurrentMachine::new(iface, PidSet::from_pids([Pid(1), Pid(2)]), env);
    machine.run(&foo_client()).expect("the walkthrough runs")
}

#[test]
fn the_walkthrough_schedule_produces_a_contended_log() {
    // The paper's schedule "1, 2, 2, 1, 1, 2, 1, 2, 1, 1, 2, 2" counts
    // *moves*; our machine consumes one scheduling decision per query
    // point, so the equivalent decision sequence doubles the leading 1
    // (the first turn only reaches acq's query point). Participant 1 wins
    // the lock and participant 2 spins, exactly as in §2.
    let schedule: Vec<Pid> = [1, 1, 2, 2, 2, 1, 2, 2]
        .into_iter()
        .map(Pid)
        .collect();
    let out = run_with_schedule(schedule);
    let stripped = out.log.without_sched();
    let kinds: Vec<&EventKind> = stripped.iter().map(|e| &e.kind).collect();
    // Both participants fetched tickets; p1's FAI came first.
    let fai_authors: Vec<Pid> = out
        .log
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FaiT(_)))
        .map(|e| e.pid)
        .collect();
    assert_eq!(fai_authors, vec![Pid(1), Pid(2)]);
    // Participant 2 spun: it probed get_n more than once.
    let p2_probes = out
        .log
        .iter()
        .filter(|e| e.pid == Pid(2) && matches!(e.kind, EventKind::GetN(_)))
        .count();
    assert!(p2_probes > 1, "p2 spun while p1 held the lock, got {kinds:?}");
    // Final shared state: both critical sections completed.
    let st = replay_ticket(&out.log, B);
    assert_eq!(st.next, 2);
    assert_eq!(st.serving, 2);
}

#[test]
fn r1_abstracts_the_walkthrough_to_the_atomic_log() {
    let schedule: Vec<Pid> = [1, 1, 2, 2, 2, 1, 2, 2]
        .into_iter()
        .map(Pid)
        .collect();
    let out = run_with_schedule(schedule);
    let lg = r1_relation().abstracted(&out.log).expect("in R1's domain");
    // The abstracted log begins exactly as the paper's lg:
    // (1.acq)•(1.f)•(1.g)•(1.rel)•(2.acq) ... (then 2's critical section
    // completes, since our run finishes both participants).
    let prefix: Vec<(Pid, String)> = lg
        .iter()
        .take(5)
        .map(|e| (e.pid, format!("{:?}", std::mem::discriminant(&e.kind))))
        .collect();
    assert_eq!(lg[0].pid, Pid(1));
    assert!(matches!(lg[0].kind, EventKind::Acq(b) if b == B), "{prefix:?}");
    assert!(matches!(&lg[1].kind, EventKind::Prim(n, _) if n == "f"));
    assert!(matches!(&lg[2].kind, EventKind::Prim(n, _) if n == "g"));
    assert!(matches!(lg[3].kind, EventKind::Rel(b) if b == B));
    assert_eq!(lg[4].pid, Pid(2));
    assert!(matches!(lg[4].kind, EventKind::Acq(b) if b == B));
    // "The order of lock acquiring and the resulting shared state ... are
    // exactly the same": the atomic log replays to a free lock.
    assert_eq!(replay_atomic_lock(&lg, B), Ok(None));
}

#[test]
fn every_fair_schedule_yields_the_same_acquisition_semantics() {
    // Whatever the interleaving, the two critical sections are serialized
    // and the abstracted log is always a legal atomic lock history.
    for seed in 0..16_u32 {
        let schedule: Vec<Pid> = (0..6).map(|i| Pid(1 + ((seed >> i) & 1))).collect();
        let out = run_with_schedule(schedule);
        let lg = r1_relation().abstracted(&out.log).expect("in R1's domain");
        replay_atomic_lock(&lg, B).expect("well-bracketed atomic history");
        // f and g always appear inside their author's critical section.
        let mut holder: Option<Pid> = None;
        for e in lg.iter() {
            match e.kind {
                EventKind::Acq(_) => holder = Some(e.pid),
                EventKind::Rel(_) => holder = None,
                EventKind::Prim(_, _) => {
                    assert_eq!(holder, Some(e.pid), "f/g outside the critical section");
                }
                _ => {}
            }
        }
    }
}
