//! Experiment F4/F5: the complete verification pipeline of Fig. 5 —
//! vertical composition, thread-safe compilation, parallel composition,
//! and the soundness theorem — plus the linking theorems (Thm 3.1, 5.1)
//! and the safety/liveness properties of §4.1.

use std::sync::Arc;

use ccal::compcertx::{compcertx, ValidateOptions};
use ccal::core::calculus::{pcomp, Rule};
use ccal::core::contexts::ContextGen;
use ccal::core::id::{Loc, Pid, PidSet, QId};
use ccal::core::refine::{check_contextual_refinement, ClientProgram};
use ccal::core::val::Val;
use ccal::machine::linking::check_multicore_linking;
use ccal::machine::mx86::Mx86Program;
use ccal::objects::ticket::{
    certify_ticket_stack, l0_interface, m1_module, r1_relation, FooEnvPlayer, TicketEnvPlayer,
};
use ccal::verifier::{check_linearizability, check_liveness, lock_history_validator, ticket_bound};

const B: Loc = Loc(0);

fn low_contexts(pid_env: Pid) -> Vec<ccal::core::env::EnvContext> {
    ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(pid_env, Arc::new(TicketEnvPlayer::new(pid_env, B, 2)))
        .with_schedule_len(3)
        .contexts()
}

fn atomic_contexts(pid_env: Pid) -> Vec<ccal::core::env::EnvContext> {
    ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(pid_env, Arc::new(FooEnvPlayer::new(pid_env, B, 2)))
        .with_schedule_len(3)
        .contexts()
}

#[test]
fn vertical_composition_builds_the_full_stack() {
    let stack = certify_ticket_stack(Pid(0), B, low_contexts(Pid(1)), atomic_contexts(Pid(1)))
        .expect("the Fig. 5 derivation succeeds");
    assert_eq!(stack.full_stack.underlay.name, "L0");
    assert_eq!(stack.full_stack.overlay.name, "L2");
    assert_eq!(stack.full_stack.relation.name(), "id ∘ R1 ∘ R2");
    // The composed certificate contains both layers' Fun obligations plus
    // the IfaceSim (log-lift), Wk and Vcomp records.
    let rules: Vec<Rule> = stack
        .full_stack
        .certificate
        .obligations()
        .iter()
        .map(|o| o.rule)
        .collect();
    for needed in [Rule::Fun, Rule::IfaceSim, Rule::Wk, Rule::Vcomp] {
        assert!(rules.contains(&needed), "missing {needed} in {rules:?}");
    }
}

#[test]
fn thread_safe_compilation_validates_m1() {
    // CompCertX(M1 ⊕ M2) of Fig. 5: compile the lock module and validate
    // it over L0.
    let opts = ValidateOptions::new(low_contexts(Pid(1)))
        .with_workload("acq", vec![vec![Val::Loc(B)]])
        .with_workload("rel", vec![vec![Val::Loc(B)]]);
    let compiled = compcertx(
        "M1",
        ccal::objects::ticket::M1_SOURCE,
        &l0_interface(),
        &opts,
    )
    .expect("compilation validates");
    assert_eq!(compiled.asm.fn_names(), vec!["acq", "rel"]);
    assert!(compiled
        .certificate
        .obligations()
        .iter()
        .all(|o| o.rule == Rule::TranslationValidation));
    assert!(compiled.certificate.total_cases() > 0);
}

#[test]
fn compiled_lock_certifies_like_the_source() {
    // The assembly produced by CompCertX can replace the C module in the
    // Fun-rule check — "certified C layers can be compiled into certified
    // assembly layers" (§2).
    use ccal::core::calculus::{check_fun, CheckOptions};
    use ccal::core::sim::SimRelation;
    let opts = ValidateOptions::new(low_contexts(Pid(1)))
        .with_workload("acq", vec![vec![Val::Loc(B)]])
        .with_workload("rel", vec![vec![Val::Loc(B)]]);
    let compiled = compcertx(
        "M1",
        ccal::objects::ticket::M1_SOURCE,
        &l0_interface(),
        &opts,
    )
    .expect("compilation validates");
    let check_opts = CheckOptions::new(low_contexts(Pid(1)))
        .with_workload("acq", vec![vec![Val::Loc(B)]])
        .with_workload("rel", vec![vec![Val::Loc(B)]]);
    let layer = check_fun(
        &l0_interface(),
        &compiled.asm_module,
        &ccal::objects::ticket::lock_low_interface(),
        &SimRelation::identity(),
        Pid(0),
        &check_opts,
    )
    .expect("the compiled module certifies");
    assert!(layer.certificate.total_cases() > 0);
}

#[test]
fn parallel_composition_and_soundness() {
    // Certify both participants, compose in parallel, and check Thm 2.2
    // with the two-thread foo client of Fig. 3.
    let s0 = certify_ticket_stack(Pid(0), B, low_contexts(Pid(1)), atomic_contexts(Pid(1)))
        .expect("pid 0 certifies");
    let s1 = certify_ticket_stack(Pid(1), B, low_contexts(Pid(0)), atomic_contexts(Pid(0)))
        .expect("pid 1 certifies");
    let both = pcomp(&s0.full_stack, &s1.full_stack).expect("Pcomp holds");
    assert_eq!(both.focused, PidSet::from_pids([Pid(0), Pid(1)]));

    let mut client = ClientProgram::new();
    client.insert(Pid(0), vec![("foo".to_owned(), vec![Val::Loc(B)])]);
    client.insert(Pid(1), vec![("foo".to_owned(), vec![Val::Loc(B)])]);
    let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_schedule_len(4)
        .contexts();
    let ob = check_contextual_refinement(&both, &client, &contexts, 200_000)
        .expect("soundness holds");
    assert_eq!(ob.rule, Rule::Soundness);
    assert!(ob.cases_checked > 0);
}

#[test]
fn multicore_linking_theorem_for_ticket_programs() {
    // Thm 3.1: hardware and layered executions agree on bounded
    // interleavings of ticket-lock primitive programs.
    let mut program = Mx86Program::new();
    for c in 0..2 {
        program.insert(
            Pid(c),
            vec![
                ("fai_t".to_owned(), vec![Val::Loc(B)]),
                ("get_n".to_owned(), vec![Val::Loc(B)]),
                ("inc_n".to_owned(), vec![Val::Loc(B)]),
            ],
        );
    }
    let ob = check_multicore_linking(2, &program, 4, 32).expect("Thm 3.1 holds");
    assert_eq!(ob.rule, Rule::MulticoreLink);
    assert!(ob.cases_checked > 0);
}

#[test]
fn multithreaded_linking_theorem() {
    // Thm 5.1: scheduling-primitive programs behave identically on the
    // implementation machine and the thread-local interface.
    let mut client = ClientProgram::new();
    client.insert(Pid(0), vec![("yield".to_owned(), vec![]); 2]);
    client.insert(Pid(1), vec![("yield".to_owned(), vec![])]);
    let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_schedule_len(3)
        .contexts();
    let ob = ccal::objects::sched::check_multithreaded_linking(&[Pid(0), Pid(1)], &client, &contexts)
        .expect("Thm 5.1 holds");
    assert_eq!(ob.rule, Rule::MultithreadLink);
    assert!(ob.cases_checked > 0);
}

#[test]
fn ticket_acq_is_starvation_free_within_the_paper_bound() {
    // §4.1: the while-loop in acq terminates in n·m·#CPU steps under a
    // fair scheduler whose rely bounds holders to n steps.
    let iface = m1_module()
        .expect("M1 parses")
        .install(&l0_interface())
        .expect("M1 installs");
    let contexts = low_contexts(Pid(1));
    // Holder keeps the lock ≤ 4 of its own steps, fairness bound ≈ 8
    // scheduling events, 2 CPUs.
    let bound = ticket_bound(4, 8, 2);
    let ob = check_liveness(
        &iface,
        "acq",
        &[Val::Loc(B)],
        Pid(0),
        &contexts,
        bound,
        200_000,
    )
    .expect("starvation-freedom within n·m·#CPU");
    assert_eq!(ob.rule, Rule::Liveness);
    assert!(ob.cases_checked > 0);
}

#[test]
fn concurrent_ticket_histories_are_linearizable() {
    let iface = m1_module()
        .expect("M1 parses")
        .install(&l0_interface())
        .expect("M1 installs");
    let mut programs = std::collections::BTreeMap::new();
    for c in 0..2 {
        programs.insert(
            Pid(c),
            vec![
                ("acq".to_owned(), vec![Val::Loc(B)]),
                ("rel".to_owned(), vec![Val::Loc(B)]),
            ],
        );
    }
    let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_schedule_len(5)
        .with_max_contexts(24)
        .contexts();
    let ob = check_linearizability(
        &iface,
        &PidSet::from_pids([Pid(0), Pid(1)]),
        &programs,
        &r1_relation(),
        &*lock_history_validator(),
        &contexts,
        200_000,
    )
    .expect("linearizable");
    assert_eq!(ob.rule, Rule::Linearizability);
    assert!(ob.cases_checked > 0);
}

#[test]
fn pcomp_rejects_overlapping_thread_sets() {
    let s0 = certify_ticket_stack(Pid(0), B, low_contexts(Pid(1)), atomic_contexts(Pid(1)))
        .expect("certifies");
    assert!(pcomp(&s0.full_stack, &s0.full_stack).is_err());
}

#[test]
fn sleep_queue_example_uses_qid_newtype() {
    // Guard test for the public id types used across the pipeline.
    assert_eq!(QId(3).to_string(), "q3");
}
