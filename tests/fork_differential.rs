//! Differential tests for query-point forking (`LayerMachine::fork` +
//! `PrimRun::fork_run`): a machine snapshotted at *any* environment query
//! point and resumed — under the same context, or under any context that
//! agrees with it on the consumed schedule prefix — must finish exactly
//! like a fresh run: same result, same final log, same abstract state,
//! same fuel consumption. This is the soundness core of the query-point
//! snapshot trie (`ccal_core::prefix::SnapshotTrie`): strategies are pure
//! functions of the log, so runs can only diverge through the events
//! their environments append after the fork point.

use std::sync::Arc;

use ccal::core::contexts::ContextGen;
use ccal::core::env::EnvContext;
use ccal::core::event::EventKind;
use ccal::core::id::{Loc, Pid};
use ccal::core::layer::{LayerInterface, PrimCtx, PrimRun, PrimSpec, PrimStep};
use ccal::core::machine::{LayerMachine, MachineError};
use ccal::core::strategy::ScratchPlayer;
use ccal::core::val::Val;
use ccal::objects::ticket::TicketEnvPlayer;

/// A primitive that alternates local work and environment queries `n`
/// times: each round bumps an abstract counter and emits an event, so a
/// forked resume that drifted in abstract state, log, or round count is
/// caught by the final comparison. Forkable, so query-point snapshots can
/// capture it mid-flight.
struct StepWait {
    left: usize,
}

impl PrimRun for StepWait {
    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        let n = ctx.abs.get_or_undef("rounds").as_int().unwrap_or(0) + 1;
        ctx.abs.set("rounds", Val::Int(n));
        ctx.emit(EventKind::Prim("round".into(), vec![Val::Int(n)]));
        if self.left == 0 {
            Ok(PrimStep::Done(Val::Int(n)))
        } else {
            self.left -= 1;
            Ok(PrimStep::Query)
        }
    }

    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        Some(Box::new(StepWait { left: self.left }))
    }
}

fn step_wait_iface(rounds: usize) -> LayerInterface {
    LayerInterface::builder("L-fork")
        .prim(PrimSpec::strategy("work", true, move |_, _| {
            Box::new(StepWait { left: rounds })
        }))
        .build()
}

/// The full observable outcome of one lower run, for equality checks.
fn outcome(res: Result<Val, MachineError>, m: &LayerMachine) -> String {
    format!("{res:?} | log={:?} | abs={:?} | steps={}", m.log, m.abs, m.steps_taken())
}

/// Runs `work` fresh on a machine over `env`, capturing a fork of the
/// machine and the in-flight run at every query point. Returns the final
/// outcome and the captured snapshots.
#[allow(clippy::type_complexity)]
fn run_with_snapshots(
    iface: &LayerInterface,
    env: &EnvContext,
) -> (String, Vec<(LayerMachine, Box<dyn PrimRun>)>) {
    let mut snaps = Vec::new();
    let mut machine = LayerMachine::new(iface.clone(), Pid(0), env.clone());
    let mut hook = |m: &LayerMachine, r: &dyn PrimRun| {
        if let Some(run) = r.fork_run() {
            snaps.push((m.fork(), run));
        }
    };
    let res = machine.call_prim_with_snapshots("work", &[], &mut hook);
    (outcome(res, &machine), snaps)
}

/// Resumes a captured snapshot under `env` and returns the final outcome.
fn resume_snapshot(snap: &(LayerMachine, Box<dyn PrimRun>), env: &EnvContext) -> String {
    let (m, r) = snap;
    let run = r.fork_run().expect("StepWait is forkable");
    let mut machine = m.fork_with_env(env.clone());
    let mut hook = |_: &LayerMachine, _: &dyn PrimRun| {};
    let res = machine.resume_query(run, &mut hook);
    outcome(res, &machine)
}

/// Sched events consumed by the snapshot — the depth at which its context
/// and a resuming context must agree.
fn consumed(m: &LayerMachine) -> usize {
    m.log.iter().filter(|e| e.is_sched()).count()
}

fn grid(len: usize, choices: [u8; 3]) -> Vec<EnvContext> {
    let total = 4_usize.pow(len as u32);
    let mut gen = ContextGen::new(vec![Pid(0), Pid(1), Pid(2), Pid(3)])
        .with_schedule_len(len)
        .with_max_contexts(total)
        .with_por(true);
    for (i, &c) in choices.iter().enumerate() {
        let pid = Pid(1 + i as u32);
        gen = match c {
            0 => gen,
            1 => gen.with_player(pid, Arc::new(ScratchPlayer::new(pid, Loc(100)))),
            2 => gen.with_player(pid, Arc::new(ScratchPlayer::new(pid, Loc(101)))),
            _ => gen.with_player(pid, Arc::new(TicketEnvPlayer::new(pid, Loc(0), 1))),
        };
    }
    gen.contexts()
}

#[test]
fn fork_at_every_query_depth_matches_fresh_run_same_context() {
    let iface = step_wait_iface(4);
    for env in grid(3, [1, 3, 2]) {
        let (fresh, snaps) = run_with_snapshots(&iface, &env);
        assert!(!snaps.is_empty(), "a 4-round wait must hit query points");
        for (depth, snap) in snaps.iter().enumerate() {
            assert_eq!(
                resume_snapshot(snap, &env),
                fresh,
                "resume from query point #{depth} diverged from the fresh run"
            );
        }
    }
}

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cross-context forking: a snapshot taken under context `i` that
    /// consumed `d` schedule slots, resumed under any context `j` whose
    /// script agrees on the first `d` slots, finishes exactly like `j`'s
    /// own fresh run — for every snapshot of every pair in a random grid.
    #[test]
    fn fork_resumes_identically_under_prefix_agreeing_contexts(
        len in 2_usize..4,
        c1 in 0_u8..4,
        c2 in 0_u8..4,
        c3 in 0_u8..4,
        rounds in 1_usize..5,
    ) {
        let iface = step_wait_iface(rounds);
        let contexts = grid(len, [c1, c2, c3]);
        let runs: Vec<_> = contexts
            .iter()
            .map(|env| run_with_snapshots(&iface, env))
            .collect();
        for (i, (_, snaps)) in runs.iter().enumerate() {
            let script_i = contexts[i].schedule_key().unwrap().script();
            for snap in snaps {
                let d = consumed(&snap.0);
                for (j, (fresh_j, _)) in runs.iter().enumerate() {
                    let script_j = contexts[j].schedule_key().unwrap().script();
                    if d <= script_j.len() && script_j[..d] == script_i[..d] {
                        prop_assert_eq!(
                            &resume_snapshot(snap, &contexts[j]),
                            fresh_j,
                            "snapshot of ctx #{} at depth {} resumed under ctx #{}",
                            i, d, j
                        );
                    }
                }
            }
        }
    }
}
