//! The §6 interchangeability claim: "Both ticket and MCS locks share the
//! same high-level atomic specifications ... Thus the lock implementations
//! can be freely interchanged without affecting any proof in the
//! higher-level modules using locks."
//!
//! We certify both locks against the same atomic interface `L1`, then
//! vertically compose the *client layer of the ticket stack* on top of the
//! *MCS lock layer* — the client's certificate is reused untouched.

use std::sync::Arc;

use ccal::core::calculus::vcomp;
use ccal::core::contexts::ContextGen;
use ccal::core::id::{Loc, Pid};
use ccal::objects::{mcs, ticket};

const B: Loc = Loc(0);

#[test]
fn both_locks_certify_to_the_same_interface() {
    let t_low = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(ticket::TicketEnvPlayer::new(Pid(1), B, 2)))
        .with_schedule_len(3)
        .contexts();
    let t_atomic = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(ticket::FooEnvPlayer::new(Pid(1), B, 2)))
        .with_schedule_len(3)
        .contexts();
    let ticket_stack =
        ticket::certify_ticket_stack(Pid(0), B, t_low, t_atomic).expect("ticket certifies");

    let m_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(mcs::McsEnvPlayer::new(Pid(1), B, 2)))
        .with_schedule_len(3)
        .contexts();
    let mcs_layer = mcs::certify_mcs_lock(Pid(0), B, m_ctx).expect("mcs certifies");

    assert_eq!(ticket_stack.lock_layer.overlay.name, mcs_layer.overlay.name);
    assert_eq!(
        ticket_stack.lock_layer.overlay.prim_names(),
        mcs_layer.overlay.prim_names()
    );
}

#[test]
fn the_client_layer_composes_over_either_lock() {
    let t_low = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(ticket::TicketEnvPlayer::new(Pid(1), B, 2)))
        .with_schedule_len(3)
        .contexts();
    let t_atomic = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(ticket::FooEnvPlayer::new(Pid(1), B, 2)))
        .with_schedule_len(3)
        .contexts();
    let ticket_stack =
        ticket::certify_ticket_stack(Pid(0), B, t_low, t_atomic).expect("ticket certifies");

    let m_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(mcs::McsEnvPlayer::new(Pid(1), B, 2)))
        .with_schedule_len(3)
        .contexts();
    let mcs_layer = mcs::certify_mcs_lock(Pid(0), B, m_ctx).expect("mcs certifies");

    // Swap the lock: the client layer (certified once, over L1) composes
    // over the MCS lock layer without re-checking anything.
    let over_ticket =
        vcomp(&ticket_stack.lock_layer, &ticket_stack.client_layer).expect("ticket ∘ client");
    let over_mcs = vcomp(&mcs_layer, &ticket_stack.client_layer).expect("mcs ∘ client");

    assert_eq!(over_ticket.overlay.name, "L2");
    assert_eq!(over_mcs.overlay.name, "L2");
    assert_eq!(over_mcs.underlay.name, "L0mcs");
    // The swapped stack reuses the client's checking cases verbatim.
    let client_cases = ticket_stack.client_layer.certificate.total_cases();
    assert!(over_mcs.certificate.total_cases() >= client_cases);
}

#[test]
fn contended_histories_abstract_identically() {
    // Run both lock implementations under the same acquisition pattern;
    // after abstraction both histories are the *same* atomic behavior:
    // two well-bracketed critical sections.
    use ccal::core::conc::ConcurrentMachine;
    use ccal::core::env::EnvContext;
    use ccal::core::event::EventKind;
    use ccal::core::id::PidSet;
    use ccal::core::replay::replay_atomic_lock;
    use ccal::core::strategy::RoundRobinScheduler;
    use ccal::core::val::Val;
    use std::collections::BTreeMap;

    let mut programs = BTreeMap::new();
    for c in 0..2 {
        programs.insert(
            Pid(c),
            vec![
                ("acq".to_owned(), vec![Val::Loc(B)]),
                ("rel".to_owned(), vec![Val::Loc(B)]),
            ],
        );
    }
    let run = |src: &str, base: ccal::core::layer::LayerInterface, rel: ccal::core::sim::SimRelation| {
        let m = ccal::clightx::clightx_module("M", src).expect("parses");
        let iface = m.install(&base).expect("installs");
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2)));
        let machine = ConcurrentMachine::new(iface, PidSet::from_pids([Pid(0), Pid(1)]), env)
            .with_fuel(500_000);
        let out = machine.run(&programs).expect("runs");
        rel.abstracted(&out.log).expect("abstractable")
    };
    let ticket_hist = run(
        ticket::M1_SOURCE,
        ticket::l0_interface(),
        ticket::r1_relation(),
    );
    let mcs_hist = run(mcs::MCS_SOURCE, mcs::l0_mcs_interface(), mcs::r_mcs_relation());
    // Identical atomic footprints: same multiset of events per pid.
    for hist in [&ticket_hist, &mcs_hist] {
        replay_atomic_lock(hist, B).expect("legal history");
        assert_eq!(hist.len(), 4, "two acq + two rel: {hist}");
        for pid in [Pid(0), Pid(1)] {
            let kinds: Vec<_> = hist
                .events_by(pid)
                .map(|e| std::mem::discriminant(&e.kind))
                .collect();
            assert_eq!(
                kinds,
                vec![
                    std::mem::discriminant(&EventKind::Acq(B)),
                    std::mem::discriminant(&EventKind::Rel(B))
                ]
            );
        }
    }
}
