//! Differential tests for the unified exploration kernel
//! (`ccal_core::explore::Kernel`): every bounded checker — simulation,
//! liveness, linearizability, race freedom and sequence refinement — now
//! routes its grid walk, prefix memoization, query-point snapshotting,
//! POR pruning and forensics capture through the one kernel, and that
//! consolidation must be *observationally invisible*. For real workloads
//! (the ticket-lock stack of §2 and the queuing lock of Fig. 11) the
//! verdict, the case accounting, and the first-failure evidence must be
//! byte-identical across every `workers × por × prefix/deep` engine
//! configuration, and the process-global step counters must reproduce
//! exactly on repeated serial runs.
//!
//! The `CCAL_KERNEL=0` escape hatch is recognized but obsolete (the
//! pre-kernel checker paths were deleted once this differential passed);
//! `scripts/verify.sh` reruns this binary with the flag set to exercise
//! the warn-once path end to end.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use ccal::core::calculus::{LayerError, Obligation};
use ccal::core::contexts::ContextGen;
use ccal::core::env::EnvContext;
use ccal::core::id::{Loc, Pid, PidSet};
use ccal::core::conc::ThreadScript;
use ccal::core::sim::{
    check_prim_refinement, SimEvidence, SimFailure, SimOptions, SimRelation,
};
use ccal::core::val::Val;
use ccal::machine::mx86::mx86_hw_interface;
use ccal::objects::qlock::{certify_qlock, qlock_overlay, QlockEnvPlayer};
use ccal::objects::ticket::{
    l0_interface, lock_interface, lock_low_interface, m1_module, r1_relation, TicketEnvPlayer,
};
use ccal::verifier::{
    check_linearizability_tuned, check_liveness_tuned, check_race_freedom_tuned,
    check_sequence_refinement_tuned, lock_history_validator, ticket_bound, OpScript,
};

const B: Loc = Loc(0);
const FUEL: u64 = 200_000;

/// The step counters asserted by [`serial_step_counters_are_reproducible`]
/// are process-global; serialize every test in this binary so concurrent
/// checker runs cannot pollute the bracketed measurement.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The engine configurations every checker is compared across: the
/// reference is serial with sharing off; each (workers, por, deep)
/// combination with sharing on must be indistinguishable from the
/// matching memo-free run.
const WORKERS: [usize; 2] = [1, 4];
const POR: [bool; 2] = [false, true];

/// Asserts that the kernel-shared run is indistinguishable from the
/// share-free reference with the same POR setting: identical verdict
/// (`Obligation`s compare field-by-field, so checked/skipped/reduced
/// counts must all match) and identical first-failure evidence, including
/// captured logs (`Debug` formatting renders every event).
fn assert_invisible(
    label: &str,
    reference: &Result<Obligation, LayerError>,
    shared: &Result<Obligation, LayerError>,
) {
    match (reference, shared) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{label}: obligation drifted under the kernel"),
        (Err(a), Err(b)) => {
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{label}: failure evidence drifted under the kernel"
            );
        }
        (a, b) => panic!("{label}: verdicts diverged: {a:?} (reference) vs {b:?} (shared)"),
    }
}

/// Same contract for the simulation checker, whose evidence type carries
/// the probe suite rather than an `Obligation`.
fn assert_sim_invisible(
    label: &str,
    reference: &Result<SimEvidence, Box<SimFailure>>,
    shared: &Result<SimEvidence, Box<SimFailure>>,
) {
    match (reference, shared) {
        (Ok(a), Ok(b)) => assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{label}: sim evidence drifted under the kernel"
        ),
        (Err(a), Err(b)) => assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{label}: sim counterexample drifted under the kernel"
        ),
        (a, b) => panic!("{label}: sim verdicts diverged: {a:?} (reference) vs {b:?} (shared)"),
    }
}

/// `M1` (real ClightX `acq`/`rel` bodies) installed over the ticket
/// underlay — the implementation side of the paper's Fig. 5 fun-lift.
fn ticket_iface() -> ccal::core::layer::LayerInterface {
    m1_module()
        .expect("M1 parses")
        .install(&l0_interface())
        .expect("M1 installs over L0")
}

/// Contexts with a real contending lock client, so `acq` consumes a
/// schedule-dependent number of query points (exercising the snapshot
/// trie, not just the flat memo).
fn ticket_contexts() -> Vec<EnvContext> {
    ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(TicketEnvPlayer::new(Pid(1), B, 2)))
        .with_schedule_len(4)
        .with_max_contexts(16)
        .contexts()
}

fn game_contexts() -> Vec<EnvContext> {
    ContextGen::new(vec![Pid(0), Pid(1)])
        .with_schedule_len(4)
        .with_max_contexts(16)
        .contexts()
}

fn acq_rel_programs(acq: &str, rel: &str) -> BTreeMap<Pid, ThreadScript> {
    let mut programs: BTreeMap<Pid, ThreadScript> = BTreeMap::new();
    for pid in [Pid(0), Pid(1)] {
        programs.insert(
            pid,
            vec![
                (acq.to_owned(), vec![Val::Loc(B)]),
                (rel.to_owned(), vec![Val::Loc(B)]),
            ],
        );
    }
    programs
}

#[test]
fn sim_on_the_ticket_stack_is_kernel_config_invariant() {
    let _g = serial();
    let lower = ticket_iface();
    let contexts = ticket_contexts();
    let args = vec![vec![Val::Loc(B)]];
    // Honest: the fun-lift obligation `L0 ⊢_id M1 : L′1` restricted to
    // `acq`. Broken: comparing `acq` against `rel` diverges on the very
    // first abstracted event, so the counterexample (which must match
    // byte-for-byte across configurations) is exercised too.
    for upper_prim in ["acq", "rel"] {
        let run = |workers: usize, por: bool, share: bool, deep: bool| {
            check_prim_refinement(
                &lower,
                "acq",
                &lock_low_interface(),
                upper_prim,
                &SimRelation::identity(),
                Pid(0),
                &contexts,
                &args,
                &SimOptions::default()
                    .with_prefix_share(share)
                    .with_deep_share(deep)
                    .with_workers(workers)
                    .with_por(por),
            )
        };
        for por in POR {
            let reference = run(1, por, false, false);
            if upper_prim == "rel" {
                assert!(reference.is_err(), "acq vs rel must be a counterexample");
            }
            for workers in WORKERS {
                for deep in [false, true] {
                    assert_sim_invisible(
                        &format!(
                            "sim ticket upper={upper_prim} workers={workers} por={por} deep={deep}"
                        ),
                        &reference,
                        &run(workers, por, true, deep),
                    );
                }
            }
        }
    }
}

#[test]
fn liveness_on_ticket_acq_is_kernel_config_invariant() {
    let _g = serial();
    let iface = ticket_iface();
    let contexts = ticket_contexts();
    // The paper's bound passes; bound 1 is unmeetable, so both polarities
    // (obligation and starvation counterexample) are compared.
    for bound in [ticket_bound(4, 8, 2), 1] {
        let run = |workers: usize, por: bool, share: bool, deep: bool| {
            check_liveness_tuned(
                &iface,
                "acq",
                &[Val::Loc(B)],
                Pid(0),
                &contexts,
                bound,
                FUEL,
                workers,
                por,
                share,
                deep,
            )
        };
        for por in POR {
            let reference = run(1, por, false, false);
            assert_eq!(reference.is_ok(), bound > 1, "bound {bound} polarity");
            for workers in WORKERS {
                for deep in [false, true] {
                    assert_invisible(
                        &format!("live ticket bound={bound} workers={workers} por={por} deep={deep}"),
                        &reference,
                        &run(workers, por, true, deep),
                    );
                }
            }
        }
    }
}

#[test]
fn linearizability_on_ticket_is_kernel_config_invariant() {
    let _g = serial();
    let iface = ticket_iface();
    let focused = PidSet::from_pids([Pid(0), Pid(1)]);
    let programs = acq_rel_programs("acq", "rel");
    let contexts = game_contexts();
    let honest = lock_history_validator();
    let reject: Box<ccal::verifier::linz::HistoryValidator> =
        Box::new(|_, _| Err("forced rejection (negative control)".to_owned()));
    for (label, validator, expect_ok) in [("honest", &honest, true), ("reject", &reject, false)] {
        let run = |workers: usize, por: bool, share: bool, deep: bool| {
            check_linearizability_tuned(
                &iface,
                &focused,
                &programs,
                &r1_relation(),
                validator,
                &contexts,
                FUEL,
                workers,
                por,
                share,
                deep,
            )
        };
        for por in POR {
            let reference = run(1, por, false, false);
            assert_eq!(reference.is_ok(), expect_ok, "{label} polarity");
            for workers in WORKERS {
                for deep in [false, true] {
                    assert_invisible(
                        &format!("linz ticket {label} workers={workers} por={por} deep={deep}"),
                        &reference,
                        &run(workers, por, true, deep),
                    );
                }
            }
        }
    }
}

#[test]
fn race_freedom_is_kernel_config_invariant() {
    let _g = serial();
    // Honest: the locked ticket client is race-free. Broken: fully
    // preemptible pull/push on the raw hardware machine gets stuck, and
    // the stuck-context evidence must match across configurations.
    let scenarios: [(&str, ccal::core::layer::LayerInterface, BTreeMap<Pid, ThreadScript>, bool);
        2] = [
        ("ticket", ticket_iface(), acq_rel_programs("acq", "rel"), true),
        (
            "mx86",
            mx86_hw_interface(),
            acq_rel_programs("pull", "push"),
            false,
        ),
    ];
    let focused = PidSet::from_pids([Pid(0), Pid(1)]);
    let contexts = game_contexts();
    for (label, iface, programs, expect_ok) in &scenarios {
        let run = |workers: usize, por: bool, share: bool, deep: bool| {
            check_race_freedom_tuned(
                iface, &focused, programs, &contexts, FUEL, workers, por, share, deep,
            )
        };
        for por in POR {
            let reference = run(1, por, false, false);
            assert_eq!(reference.is_ok(), *expect_ok, "{label} polarity");
            for workers in WORKERS {
                for deep in [false, true] {
                    assert_invisible(
                        &format!("race {label} workers={workers} por={por} deep={deep}"),
                        &reference,
                        &run(workers, por, true, deep),
                    );
                }
            }
        }
    }
}

#[test]
fn sequence_refinement_on_ticket_is_kernel_config_invariant() {
    let _g = serial();
    let impl_iface = ticket_iface();
    let scripts: Vec<OpScript> = vec![vec![
        ("acq".to_owned(), vec![Val::Loc(B)]),
        ("rel".to_owned(), vec![Val::Loc(B)]),
    ]];
    let contexts = ticket_contexts();
    // The `R1` abstraction against the atomic lock spec is the certified
    // direction; the identity relation against the same spec diverges on
    // the low-level events. Either way the verdict — and, on failure, the
    // exact case index and rendered evidence — must be configuration
    // independent.
    for (label, relation) in [("r1", r1_relation()), ("id", SimRelation::identity())] {
        let run = |workers: usize, por: bool, share: bool, deep: bool| {
            check_sequence_refinement_tuned(
                &impl_iface,
                &lock_interface(),
                &relation,
                Pid(0),
                &contexts,
                &scripts,
                FUEL,
                workers,
                por,
                share,
                deep,
            )
        };
        for por in POR {
            let reference = run(1, por, false, false);
            for workers in WORKERS {
                for deep in [false, true] {
                    assert_invisible(
                        &format!("seqref ticket {label} workers={workers} por={por} deep={deep}"),
                        &reference,
                        &run(workers, por, true, deep),
                    );
                }
            }
        }
    }
}

#[test]
fn qlock_overlay_checkers_are_kernel_config_invariant() {
    let _g = serial();
    // The queuing-lock side of the differential: the atomic overlay's
    // `acq_q`/`rel_q` through linearizability, race freedom, sequence
    // refinement and liveness. (The full ClightX `Mql` stack is covered by
    // `qlock_certificate_is_deterministic_through_the_kernel`.)
    let iface = qlock_overlay();
    let focused = PidSet::from_pids([Pid(0), Pid(1)]);
    let programs = acq_rel_programs("acq_q", "rel_q");
    let contexts = game_contexts();
    let validator = lock_history_validator();
    for por in POR {
        let linz_ref = check_linearizability_tuned(
            &iface, &focused, &programs, &SimRelation::identity(), &validator, &contexts, FUEL,
            1, por, false, false,
        );
        assert!(linz_ref.is_ok(), "atomic qlock histories linearize");
        let race_ref = check_race_freedom_tuned(
            &iface, &focused, &programs, &contexts, FUEL, 1, por, false, false,
        );
        assert!(race_ref.is_ok(), "atomic qlock clients are race-free");
        let scripts: Vec<OpScript> = vec![vec![
            ("acq_q".to_owned(), vec![Val::Loc(B)]),
            ("rel_q".to_owned(), vec![Val::Loc(B)]),
        ]];
        let seq_ref = check_sequence_refinement_tuned(
            &iface, &iface, &SimRelation::identity(), Pid(0), &contexts, &scripts, FUEL,
            1, por, false, false,
        );
        let live_ref = check_liveness_tuned(
            &iface, "acq_q", &[Val::Loc(B)], Pid(0), &contexts, 32, FUEL,
            1, por, false, false,
        );
        assert!(live_ref.is_ok(), "uncontended acq_q completes promptly");
        for workers in WORKERS {
            for deep in [false, true] {
                let label = format!("qlock workers={workers} por={por} deep={deep}");
                assert_invisible(
                    &format!("linz {label}"),
                    &linz_ref,
                    &check_linearizability_tuned(
                        &iface, &focused, &programs, &SimRelation::identity(), &validator,
                        &contexts, FUEL, workers, por, true, deep,
                    ),
                );
                assert_invisible(
                    &format!("race {label}"),
                    &race_ref,
                    &check_race_freedom_tuned(
                        &iface, &focused, &programs, &contexts, FUEL, workers, por, true, deep,
                    ),
                );
                assert_invisible(
                    &format!("seqref {label}"),
                    &seq_ref,
                    &check_sequence_refinement_tuned(
                        &iface, &iface, &SimRelation::identity(), Pid(0), &contexts, &scripts,
                        FUEL, workers, por, true, deep,
                    ),
                );
                assert_invisible(
                    &format!("live {label}"),
                    &live_ref,
                    &check_liveness_tuned(
                        &iface, "acq_q", &[Val::Loc(B)], Pid(0), &contexts, 32, FUEL,
                        workers, por, true, deep,
                    ),
                );
            }
        }
    }
}

#[test]
fn qlock_certificate_is_deterministic_through_the_kernel() {
    let _g = serial();
    // `certify_qlock` drives the real ClightX `Mql` module through
    // `check_fun` (the sim checker, now a kernel client). Two back-to-back
    // runs must render byte-identically.
    let contexts = || {
        ContextGen::new(vec![Pid(0), Pid(1)])
            .with_player(Pid(1), Arc::new(QlockEnvPlayer::new(Pid(1), B, 2)))
            .with_schedule_len(3)
            .contexts()
    };
    let run = || {
        certify_qlock(Pid(0), B, contexts())
            .map(|layer| format!("{layer:?}"))
            .map_err(|e| format!("{e:?}"))
    };
    let first = run();
    assert_eq!(first, run(), "qlock certificate drifted between runs");
    let rendered = first.expect("the queuing lock certifies");
    assert!(rendered.contains("Obligation"), "certificate renders: {rendered}");
}

#[test]
fn serial_step_counters_are_reproducible() {
    let _g = serial();
    // The atom-step / memo-hit / snapshot-resume counters are process-wide
    // and only serial-deterministic; two identical serial runs bracketed
    // by a reset must agree exactly, and the sharing counters must show
    // the kernel actually shared work on this grid.
    let iface = ticket_iface();
    let contexts = ticket_contexts();
    let run = || {
        ccal::core::prefix::steps_reset();
        let ob = check_liveness_tuned(
            &iface,
            "acq",
            &[Val::Loc(B)],
            Pid(0),
            &contexts,
            ticket_bound(4, 8, 2),
            FUEL,
            1,
            true,
            true,
            true,
        )
        .expect("acq is starvation-free under the rely");
        (
            format!("{ob:?}"),
            ccal::core::prefix::steps_total(),
            ccal::core::prefix::shared_total(),
            ccal::core::prefix::deep_total(),
            ccal::core::prefix::prim_steps_total(),
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "serial step counters drifted between runs");
    assert!(first.1 > 0, "executed runs must record atom-steps");
    assert!(
        first.2 + first.3 > 0,
        "the kernel must share at least one lower run on this grid"
    );
}

#[test]
fn kernel_escape_hatch_is_recognized_but_obsolete() {
    let _g = serial();
    // `CCAL_KERNEL` is parsed (and `CCAL_KERNEL=0` warns once) but the
    // kernel can no longer be bypassed: the pre-kernel per-checker
    // exploration paths were deleted. `scripts/verify.sh` reruns this
    // whole binary with `CCAL_KERNEL=0` to pin that the flag is inert.
    assert!(ccal::core::explore::kernel_enabled());
}
