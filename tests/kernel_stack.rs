//! Experiment F1: the concurrent layer stack of Fig. 1, certified
//! bottom-up and exercised end-to-end — spinlocks, shared queues, the
//! scheduler, the queuing lock, condition variables and IPC.

use std::collections::BTreeMap;
use std::sync::Arc;

use ccal::core::conc::ConcurrentMachine;
use ccal::core::contexts::ContextGen;
use ccal::core::env::EnvContext;
use ccal::core::id::{Loc, Pid, PidSet, QId};
use ccal::core::strategy::RoundRobinScheduler;
use ccal::core::val::Val;
use ccal::objects::{condvar, ipc, qlock, sched, sharedq, ticket};

#[test]
fn every_layer_of_the_tower_certifies() {
    let b = Loc(0);
    let low = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(ticket::TicketEnvPlayer::new(Pid(1), b, 2)))
        .with_schedule_len(2)
        .contexts();
    let atomic = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(ticket::FooEnvPlayer::new(Pid(1), b, 2)))
        .with_schedule_len(2)
        .contexts();
    let stack = ticket::certify_ticket_stack(Pid(0), b, low, atomic).expect("spinlock");

    let q = Loc(3);
    let q_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(sharedq::SharedQEnvPlayer::new(Pid(1), q, 2)))
        .with_schedule_len(2)
        .contexts();
    let q_layer = sharedq::certify_shared_queue(Pid(0), q, q_ctx).expect("shared queue");

    let s_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(sched::WakerEnvPlayer::new(Pid(1), QId(5), 2)))
        .with_schedule_len(2)
        .contexts();
    let s_layer = sched::certify_scheduler(Pid(0), QId(5), Loc(9), s_ctx).expect("scheduler");

    let l = Loc(4);
    let ql_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(qlock::QlockEnvPlayer::new(Pid(1), l, 2)))
        .with_schedule_len(2)
        .contexts();
    let ql_layer = qlock::certify_qlock(Pid(0), l, ql_ctx).expect("queuing lock");

    let cv_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(condvar::CvEnvPlayer::new(Pid(1), QId(8), l)))
        .with_schedule_len(2)
        .contexts();
    let cv_layer = condvar::certify_condvar(Pid(0), QId(8), l, cv_ctx).expect("condvar");

    let ch = Loc(6);
    let ipc_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(ipc::SenderEnvPlayer::new(Pid(1), ch, 2)))
        .with_schedule_len(2)
        .contexts();
    let ipc_layer = ipc::certify_ipc(Pid(0), ch, ipc_ctx).expect("IPC");

    // Every judgment names its layer pair and carries a non-empty
    // certificate.
    for (layer, under, over) in [
        (&stack.lock_layer, "L0", "L1"),
        (&q_layer, "Lq", "Lq_high"),
        (&s_layer, "Lsq", "Lhtd"),
        (&ql_layer, "Lql", "Lqlock"),
        (&cv_layer, "Lcvb", "Lcv"),
        (&ipc_layer, "Lipcb", "Lipc"),
    ] {
        assert_eq!(layer.underlay.name, under);
        assert_eq!(layer.overlay.name, over);
        assert!(layer.certificate.total_cases() > 0, "{under} ⊢ {over}");
    }
}

#[test]
fn the_whole_stack_runs_a_producer_consumer_workload() {
    // Execute the producer/consumer of the ipc_pipeline example as a test:
    // the full implementation stack (qlock + CV + mailbox) underneath.
    let ch = Loc(6);
    let module = ccal::clightx::clightx_module("Mipc", ipc::IPC_SOURCE).expect("parses");
    let iface = module.install(&ipc::ipc_underlay()).expect("installs");
    let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2)));
    let machine = ConcurrentMachine::new(iface, PidSet::from_pids([Pid(0), Pid(1)]), env)
        .with_fuel(500_000);
    let mut programs = BTreeMap::new();
    programs.insert(
        Pid(0),
        (1..=4)
            .map(|i| ("send".to_owned(), vec![Val::Loc(ch), Val::Int(i)]))
            .collect::<Vec<_>>(),
    );
    programs.insert(
        Pid(1),
        (0..4)
            .map(|_| ("recv".to_owned(), vec![Val::Loc(ch)]))
            .collect::<Vec<_>>(),
    );
    let out = machine.run(&programs).expect("pipeline completes");
    assert_eq!(
        out.rets[&Pid(1)],
        vec![Val::Int(1), Val::Int(2), Val::Int(3), Val::Int(4)],
        "messages delivered in order through the whole tower"
    );
}

#[test]
fn shared_queue_runs_over_both_certified_locks() {
    // The §6 interchangeability claim, exercised dynamically: the shared
    // queue implementation only needs the *atomic* acq/rel interface, so
    // it runs unchanged whether the events underneath came from a ticket
    // or an MCS acquisition history. Here we drive the shared queue over
    // its atomic underlay and verify FIFO behavior under contention.
    let q = Loc(3);
    let module = ccal::clightx::clightx_module("Mq", sharedq::SHAREDQ_SOURCE).expect("parses");
    let iface = module.install(&sharedq::sharedq_underlay()).expect("installs");
    let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2)));
    let machine = ConcurrentMachine::new(iface, PidSet::from_pids([Pid(0), Pid(1)]), env)
        .with_fuel(500_000);
    let mut programs = BTreeMap::new();
    programs.insert(
        Pid(0),
        vec![
            ("enQ".to_owned(), vec![Val::Loc(q), Val::Int(1)]),
            ("enQ".to_owned(), vec![Val::Loc(q), Val::Int(2)]),
        ],
    );
    programs.insert(
        Pid(1),
        vec![
            ("deQ".to_owned(), vec![Val::Loc(q)]),
            ("deQ".to_owned(), vec![Val::Loc(q)]),
        ],
    );
    let out = machine.run(&programs).expect("queue workload completes");
    // Dequeued values are a subsequence of {-1, 1, 2} consistent with FIFO.
    let got: Vec<i64> = out.rets[&Pid(1)]
        .iter()
        .map(|v| v.as_int().expect("int result"))
        .collect();
    let non_empty: Vec<i64> = got.iter().copied().filter(|v| *v != -1).collect();
    let mut sorted = non_empty.clone();
    sorted.sort_unstable();
    assert_eq!(non_empty, sorted, "FIFO order preserved: {got:?}");
}
