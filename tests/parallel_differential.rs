//! Differential tests for the parallel, work-stealing exploration engine:
//! exploring the `(context × argument)` case grid across workers, with or
//! without symmetric-schedule dedup, must be **bit-identical** to the
//! serial checker — same certificates (obligations, counts, probe logs in
//! the same order), same verdicts, and the same *first* failure selected
//! by case index.

use std::sync::Arc;

use ccal::core::contexts::ContextGen;
use ccal::core::env::EnvContext;
use ccal::core::event::EventKind;
use ccal::core::id::{Loc, Pid};
use ccal::core::layer::{LayerInterface, PrimSpec};
use ccal::core::sim::{check_prim_refinement, SimOptions, SimRelation};
use ccal::core::val::Val;
use ccal::objects::sharedq::{certify_shared_queue_tuned, SharedQEnvPlayer};
use ccal::objects::ticket::{certify_ticket_stack_tuned, FooEnvPlayer, TicketEnvPlayer};

const B: Loc = Loc(0);

fn low_contexts(b: Loc) -> Vec<EnvContext> {
    ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(TicketEnvPlayer::new(Pid(1), b, 2)))
        .with_schedule_len(3)
        .contexts()
}

fn atomic_contexts(b: Loc) -> Vec<EnvContext> {
    ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(FooEnvPlayer::new(Pid(1), b, 2)))
        .with_schedule_len(3)
        .contexts()
}

#[test]
fn ticket_stack_certificates_are_identical_across_workers_and_dedup() {
    let serial = certify_ticket_stack_tuned(Pid(0), B, low_contexts(B), atomic_contexts(B), 1, false)
        .expect("serial certification succeeds");
    let parallel =
        certify_ticket_stack_tuned(Pid(0), B, low_contexts(B), atomic_contexts(B), 4, true)
            .expect("parallel certification succeeds");
    assert_eq!(serial.fun_lift.certificate, parallel.fun_lift.certificate);
    assert_eq!(serial.log_lift.certificate, parallel.log_lift.certificate);
    assert_eq!(serial.lock_layer.certificate, parallel.lock_layer.certificate);
    assert_eq!(
        serial.client_layer.certificate,
        parallel.client_layer.certificate
    );
    assert_eq!(serial.full_stack.certificate, parallel.full_stack.certificate);
    assert_eq!(
        serial.full_stack.judgment(),
        parallel.full_stack.judgment()
    );
}

#[test]
fn shared_queue_certificates_are_identical_across_workers_and_dedup() {
    let q = Loc(3);
    let contexts = || {
        ContextGen::new(vec![Pid(0), Pid(1)])
            .with_player(Pid(1), Arc::new(SharedQEnvPlayer::new(Pid(1), q, 2)))
            .with_schedule_len(3)
            .contexts()
    };
    let serial = certify_shared_queue_tuned(Pid(0), q, contexts(), 1, false)
        .expect("serial certification succeeds");
    let parallel = certify_shared_queue_tuned(Pid(0), q, contexts(), 4, true)
        .expect("parallel certification succeeds");
    assert_eq!(serial.certificate, parallel.certificate);
    assert_eq!(serial.judgment(), parallel.judgment());
}

/// A deliberately broken refinement with *many* failing cases: return
/// values diverge for every argument ≥ 5 in every context. All engine
/// configurations must report the same first failure — smallest case
/// index, i.e. context #0, args #5.
#[test]
fn first_failure_is_selected_by_case_index_in_every_configuration() {
    let lower = LayerInterface::builder("LD")
        .prim(PrimSpec::atomic("op", |ctx, args| {
            ctx.emit(EventKind::Prim("op".into(), vec![args[0].clone()]));
            Ok(args[0].clone())
        }))
        .build();
    let upper = LayerInterface::builder("UD")
        .prim(PrimSpec::atomic("op", |ctx, args| {
            ctx.emit(EventKind::Prim("op".into(), vec![args[0].clone()]));
            let n = args[0].as_int()?;
            Ok(Val::Int(if n >= 5 { n + 1 } else { n }))
        }))
        .build();
    let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_schedule_len(3)
        .contexts();
    assert!(contexts.len() > 1, "the grid must span several contexts");
    let args: Vec<Vec<Val>> = (0..10).map(|i| vec![Val::Int(i)]).collect();
    let mut failures = Vec::new();
    for (workers, dedup) in [(1, false), (1, true), (4, false), (4, true), (8, true)] {
        let opts = SimOptions::default().with_workers(workers).with_dedup(dedup);
        let failure = check_prim_refinement(
            &lower, "op", &upper, "op", &SimRelation::identity(), Pid(0), &contexts, &args, &opts,
        )
        .expect_err("the refinement is broken");
        failures.push((workers, dedup, failure));
    }
    let reference = format!("{}", failures[0].2);
    assert!(
        failures[0].2.case.starts_with("context #0, args #5"),
        "serial first failure must be the smallest case index, got {}",
        failures[0].2.case
    );
    for (workers, dedup, failure) in &failures {
        assert_eq!(
            format!("{failure}"),
            reference,
            "workers={workers} dedup={dedup} selected a different failure"
        );
    }
}

/// The work queue hands out cases in chunks of 16; a first failure that
/// sits *beyond* the first chunk, with more failures straddling later
/// chunk boundaries, must still be selected by least case index in every
/// configuration (a worker that grabs a later chunk can reach its failure
/// before the earlier chunk's failure is even run).
#[test]
fn first_failure_beyond_the_first_chunk_is_stable() {
    let lower = LayerInterface::builder("LD2")
        .prim(PrimSpec::atomic("op", |ctx, args| {
            ctx.emit(EventKind::Prim("op".into(), vec![args[0].clone()]));
            Ok(args[0].clone())
        }))
        .build();
    let upper = LayerInterface::builder("UD2")
        .prim(PrimSpec::atomic("op", |ctx, args| {
            ctx.emit(EventKind::Prim("op".into(), vec![args[0].clone()]));
            let n = args[0].as_int()?;
            Ok(Val::Int(if n >= 17 { n + 1 } else { n }))
        }))
        .build();
    let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_schedule_len(1)
        .contexts();
    let args: Vec<Vec<Val>> = (0..20).map(|i| vec![Val::Int(i)]).collect();
    // Failing case indices: 17..20 per context — the first (17) is inside
    // the second chunk, the rest straddle every later chunk boundary.
    assert!(contexts.len() * args.len() > 32, "grid must span 3+ chunks");
    let mut reference: Option<String> = None;
    for workers in [1, 2, 4, 8] {
        let opts = SimOptions::default().with_workers(workers).with_por(false);
        let failure = check_prim_refinement(
            &lower, "op", &upper, "op", &SimRelation::identity(), Pid(0), &contexts, &args, &opts,
        )
        .expect_err("the refinement is broken");
        assert!(
            failure.case.starts_with("context #0, args #17"),
            "workers={workers}: first failure must be case 17, got {}",
            failure.case
        );
        let rendered = format!("{failure}");
        match &reference {
            None => reference = Some(rendered),
            Some(r) => assert_eq!(&rendered, r, "workers={workers} drifted"),
        }
    }
}

/// Forensics captures under a parallel run: workers may record failures
/// from later chunks before abandonment propagates, but the *index-least*
/// capture must be exactly the failure the serial checker reports — that
/// is the witness the shrink/replay pipeline reifies.
#[test]
fn parallel_capture_yields_the_index_least_failing_case() {
    use ccal::core::forensics::CaptureScope;
    use ccal::objects::buggy;

    let check = |workers: usize| {
        check_prim_refinement(
            &buggy::scratch_sensitive_lower(),
            "op",
            &buggy::scratch_sensitive_upper(),
            "op",
            &SimRelation::identity(),
            Pid(0),
            &buggy::scratch_sensitive_contexts(),
            &[vec![]],
            &SimOptions::default().with_workers(workers).with_por(false),
        )
        .expect_err("the fixture is buggy")
    };
    let scope = CaptureScope::begin();
    let serial_failure = check(1);
    let serial = scope.take();
    let scope = CaptureScope::begin();
    let parallel_failure = check(4);
    let parallel = scope.take();
    let first_serial = serial.first().expect("serial run captured its failure");
    let first_parallel = parallel.first().expect("parallel run captured its failure");
    assert_eq!(first_serial.case_index, first_parallel.case_index);
    assert_eq!(first_serial.detail, first_parallel.detail);
    assert_eq!(first_serial.reason, first_parallel.reason);
    assert_eq!(first_serial.log, first_parallel.log);
    assert_eq!(first_serial.detail, serial_failure.case);
    assert_eq!(format!("{serial_failure}"), format!("{parallel_failure}"));
}

/// Dedup explores each distinct replayed upper environment once, yet the
/// evidence it reports — case counts and probe logs — must be exactly
/// what a dedup-free exploration reports (Fig. 3 walkthrough stack).
#[test]
fn dedup_never_changes_the_verdict_or_the_evidence() {
    for workers in [1, 4] {
        let with_dedup =
            certify_ticket_stack_tuned(Pid(0), B, low_contexts(B), atomic_contexts(B), workers, true)
                .expect("certification succeeds with dedup");
        let without =
            certify_ticket_stack_tuned(Pid(0), B, low_contexts(B), atomic_contexts(B), workers, false)
                .expect("certification succeeds without dedup");
        assert_eq!(
            with_dedup.full_stack.certificate, without.full_stack.certificate,
            "workers={workers}: dedup changed the certificate"
        );
        assert_eq!(
            with_dedup.lock_layer.certificate,
            without.lock_layer.certificate
        );
    }
}
