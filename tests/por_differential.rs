//! Differential tests for the sleep-set partial-order reduction: running
//! any bounded checker over the POR-reduced grid must produce the same
//! verdict and the same first-failure evidence as the full, unreduced
//! grid — the only permitted difference is the number of cases skipped as
//! trace-equivalent (`cases_reduced`). Mirrors the engine-differential
//! suite in `tests/parallel_differential.rs` along the POR axis, across
//! all five bounded checkers: `check_prim_refinement`, liveness, race
//! freedom, linearizability, and sequence refinement.

use std::collections::BTreeMap;
use std::sync::Arc;

use ccal::core::calculus::{LayerError, Obligation};
use ccal::core::contexts::ContextGen;
use ccal::core::env::EnvContext;
use ccal::core::event::EventKind;
use ccal::core::id::{Loc, Pid, PidSet, QId};
use ccal::core::layer::{LayerInterface, PrimCtx, PrimRun, PrimSpec, PrimStep};
use ccal::core::machine::MachineError;
use ccal::core::sim::{check_prim_refinement, SimOptions, SimRelation};
use ccal::core::strategy::ScratchPlayer;
use ccal::core::val::Val;
use ccal::objects::ticket::TicketEnvPlayer;
use ccal::verifier::{
    check_linearizability_por, check_liveness_por, check_race_freedom_por,
    check_sequence_refinement_por, fifo_history_validator,
};

/// A grid on which the reduction actually fires: two scratch threads with
/// disjoint locations (mutually independent) next to a ticket contender
/// and the opaque focused pid. Generated with POR marking forced on, so
/// the same contexts serve both the reduced and the unreduced run — the
/// full-grid run simply ignores the marks.
fn reducible_contexts(len: usize) -> Vec<EnvContext> {
    let total = 4_usize.pow(len as u32);
    ContextGen::new(vec![Pid(0), Pid(1), Pid(2), Pid(3)])
        .with_player(Pid(1), Arc::new(TicketEnvPlayer::new(Pid(1), Loc(0), 1)))
        .with_player(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), Loc(100))))
        .with_player(Pid(3), Arc::new(ScratchPlayer::new(Pid(3), Loc(101))))
        .with_schedule_len(len)
        .with_max_contexts(total)
        .with_por(true)
        .contexts()
}

/// Asserts the POR accounting identity between an obligation discharged
/// on the reduced grid and the same obligation on the full grid: every
/// case is checked, skipped, or reduced, and the full run reduces
/// nothing.
fn assert_accounting(on: &Obligation, off: &Obligation) {
    assert_eq!(off.cases_reduced, 0, "POR off must reduce nothing");
    assert!(on.cases_reduced > 0, "the grid must actually reduce");
    assert_eq!(
        on.cases_checked + on.cases_skipped + on.cases_reduced,
        off.cases_checked + off.cases_skipped,
        "canonical + skipped + reduced must cover the full grid"
    );
}

#[test]
fn sim_refinement_verdict_and_accounting_match_the_full_grid() {
    let iface = LayerInterface::builder("L-ctr")
        .prim(PrimSpec::atomic("bump", |ctx, _| {
            let n = ctx.abs.get_or_undef("n").as_int().unwrap_or(0) + 1;
            ctx.abs.set("n", Val::Int(n));
            ctx.emit(EventKind::Prim("bump".into(), vec![]));
            Ok(Val::Int(n))
        }))
        .build();
    let contexts = reducible_contexts(3);
    let args = vec![vec![]];
    let run = |por: bool| {
        check_prim_refinement(
            &iface,
            "bump",
            &iface,
            "bump",
            &SimRelation::identity(),
            Pid(0),
            &contexts,
            &args,
            &SimOptions::default().with_por(por),
        )
        .expect("identity refinement holds")
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(off.cases_reduced, 0);
    assert!(on.cases_reduced > 0, "the grid must actually reduce");
    assert_eq!(
        on.cases_checked + on.cases_skipped + on.cases_reduced,
        off.cases_checked + off.cases_skipped
    );
}

#[test]
fn sim_first_failure_is_identical_with_and_without_por() {
    // Broken for every argument ≥ 5 in every context: all configurations
    // must select the same smallest case index.
    let lower = LayerInterface::builder("LD")
        .prim(PrimSpec::atomic("op", |ctx, args| {
            ctx.emit(EventKind::Prim("op".into(), vec![args[0].clone()]));
            Ok(args[0].clone())
        }))
        .build();
    let upper = LayerInterface::builder("UD")
        .prim(PrimSpec::atomic("op", |ctx, args| {
            ctx.emit(EventKind::Prim("op".into(), vec![args[0].clone()]));
            let n = args[0].as_int()?;
            Ok(Val::Int(if n >= 5 { n + 1 } else { n }))
        }))
        .build();
    let contexts = reducible_contexts(3);
    let args: Vec<Vec<Val>> = (0..8).map(|i| vec![Val::Int(i)]).collect();
    let mut rendered = Vec::new();
    for (por, workers, dedup) in [
        (false, 1, false),
        (true, 1, false),
        (true, 4, false),
        (true, 4, true),
    ] {
        let opts = SimOptions::default()
            .with_por(por)
            .with_workers(workers)
            .with_dedup(dedup);
        let failure = check_prim_refinement(
            &lower,
            "op",
            &upper,
            "op",
            &SimRelation::identity(),
            Pid(0),
            &contexts,
            &args,
            &opts,
        )
        .expect_err("the refinement is broken");
        rendered.push((por, workers, dedup, format!("{failure}"), failure.case));
    }
    assert!(
        rendered[0].4.starts_with("context #0, args #5"),
        "full-grid first failure must be the smallest case index, got {}",
        rendered[0].4
    );
    for (por, workers, dedup, text, _) in &rendered {
        assert_eq!(
            text, &rendered[0].3,
            "por={por} workers={workers} dedup={dedup} selected a different failure"
        );
    }
}

/// A primitive that queries the environment until `k` non-scheduling
/// events exist in the log, then finishes — the liveness workload.
fn wait_for_iface(k: usize) -> LayerInterface {
    struct WaitFor(usize);
    impl PrimRun for WaitFor {
        fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
            if ctx.log.without_sched().len() >= self.0 {
                ctx.emit(EventKind::Prim("done".into(), vec![]));
                Ok(PrimStep::Done(Val::Unit))
            } else {
                Ok(PrimStep::Query)
            }
        }
    }
    LayerInterface::builder("L-wait")
        .prim(PrimSpec::strategy("wait", true, move |_, _| {
            Box::new(WaitFor(k))
        }))
        .build()
}

#[test]
fn liveness_verdict_and_failure_match_the_full_grid() {
    let contexts = reducible_contexts(3);
    // Generous bound: the verdict is Ok; accounting must agree.
    let ok = |por: bool| {
        check_liveness_por(
            &wait_for_iface(0),
            "wait",
            &[],
            Pid(0),
            &contexts,
            64,
            100_000,
            por,
        )
        .expect("trivial wait completes")
    };
    assert_accounting(&ok(true), &ok(false));
    // Over-budget: a zero-step bound fails on the first context that
    // consumes any scheduling step. Both runs must report the same
    // context index and the same observed step count.
    let over = |por: bool| {
        check_liveness_por(
            &wait_for_iface(1),
            "wait",
            &[],
            Pid(0),
            &contexts,
            0,
            100_000,
            por,
        )
        .expect_err("a zero-step bound is over-budget somewhere")
    };
    assert_eq!(over(true).to_string(), over(false).to_string());
}

#[test]
fn race_freedom_verdict_and_failure_match_the_full_grid() {
    use ccal::machine::mx86::mx86_hw_interface;
    let contexts = reducible_contexts(3);
    let focused = PidSet::from_pids([Pid(0)]);
    // Race-free: the focused pid owns its location.
    let mut safe = BTreeMap::new();
    safe.insert(
        Pid(0),
        vec![
            ("pull".to_owned(), vec![Val::Loc(Loc(50))]),
            ("push".to_owned(), vec![Val::Loc(Loc(50))]),
        ],
    );
    let ok = |por: bool| {
        check_race_freedom_por(&mx86_hw_interface(), &focused, &safe, &contexts, 50_000, por)
            .expect("disjoint locations are race-free")
    };
    assert_accounting(&ok(true), &ok(false));
    // Racy: two focused pids share a location with fully preemptible
    // pull/push, next to the two independent scratch threads — the
    // machine gets stuck on some interleaving, and both runs must report
    // the same first stuck context.
    let total = 4_usize.pow(3);
    let racy_contexts = ContextGen::new(vec![Pid(0), Pid(1), Pid(2), Pid(3)])
        .with_player(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), Loc(100))))
        .with_player(Pid(3), Arc::new(ScratchPlayer::new(Pid(3), Loc(101))))
        .with_schedule_len(3)
        .with_max_contexts(total)
        .with_por(true)
        .contexts();
    let both = PidSet::from_pids([Pid(0), Pid(1)]);
    let mut racy = BTreeMap::new();
    for c in 0..2 {
        racy.insert(
            Pid(c),
            vec![
                ("pull".to_owned(), vec![Val::Loc(Loc(0))]),
                ("push".to_owned(), vec![Val::Loc(Loc(0))]),
            ],
        );
    }
    let fail = |por: bool| {
        check_race_freedom_por(
            &mx86_hw_interface(),
            &both,
            &racy,
            &racy_contexts,
            50_000,
            por,
        )
        .expect_err("fully preemptible sharing races somewhere")
    };
    assert_eq!(fail(true).to_string(), fail(false).to_string());
}

fn atomic_queue_iface(deq_ret: Option<i64>) -> LayerInterface {
    let mut b = LayerInterface::builder("Lq").prim(PrimSpec::atomic("enq", |ctx, args| {
        let q = QId(args[0].as_int()? as u32);
        ctx.emit(EventKind::EnQ(q, args[1].clone()));
        Ok(Val::Unit)
    }));
    b = match deq_ret {
        // Honest: return what the replayed queue holds.
        None => b.prim(PrimSpec::atomic("deq", |ctx, args| {
            let q = QId(args[0].as_int()? as u32);
            ctx.emit(EventKind::DeQ(q));
            Ok(ccal::core::replay::deq_result(ctx.log, ctx.log.len() - 1))
        })),
        // Broken: always return the same constant.
        Some(k) => b.prim(PrimSpec::atomic("deq", move |ctx, args| {
            let q = QId(args[0].as_int()? as u32);
            ctx.emit(EventKind::DeQ(q));
            Ok(Val::Int(k))
        })),
    };
    b.build()
}

#[test]
fn linearizability_verdict_and_failure_match_the_full_grid() {
    let contexts = reducible_contexts(3);
    let focused = PidSet::from_pids([Pid(0)]);
    let mut programs = BTreeMap::new();
    programs.insert(
        Pid(0),
        vec![
            ("enq".to_owned(), vec![Val::Int(0), Val::Int(10)]),
            ("deq".to_owned(), vec![Val::Int(0)]),
        ],
    );
    let run = |iface: &LayerInterface, por: bool| {
        check_linearizability_por(
            iface,
            &focused,
            &programs,
            &SimRelation::identity(),
            &*fifo_history_validator("deq"),
            &contexts,
            100_000,
            por,
        )
    };
    let on = run(&atomic_queue_iface(None), true).expect("atomic queue is linearizable");
    let off = run(&atomic_queue_iface(None), false).expect("atomic queue is linearizable");
    assert_accounting(&on, &off);
    let broken_on = run(&atomic_queue_iface(Some(999)), true).expect_err("999 is never predicted");
    let broken_off = run(&atomic_queue_iface(Some(999)), false).expect_err("999 is never predicted");
    assert_eq!(broken_on.to_string(), broken_off.to_string());
}

fn counter_iface(name: &str, broken: bool) -> LayerInterface {
    LayerInterface::builder(name)
        .prim(PrimSpec::atomic("bump", move |ctx, _| {
            let n = ctx.abs.get_or_undef("n").as_int().unwrap_or(0) + 1;
            ctx.abs.set("n", Val::Int(n));
            ctx.emit(EventKind::Prim("bump".into(), vec![]));
            Ok(Val::Int(if broken && n >= 3 { n + 1 } else { n }))
        }))
        .build()
}

#[test]
fn sequence_refinement_verdict_and_failure_match_the_full_grid() {
    let contexts = reducible_contexts(3);
    let scripts = vec![vec![("bump".to_owned(), vec![]); 4]];
    let run = |impl_iface: &LayerInterface, por: bool| {
        check_sequence_refinement_por(
            impl_iface,
            &counter_iface("ctr-spec", false),
            &SimRelation::identity(),
            Pid(0),
            &contexts,
            &scripts,
            100_000,
            por,
        )
    };
    let on = run(&counter_iface("ctr-impl", false), true).expect("identical counters agree");
    let off = run(&counter_iface("ctr-impl", false), false).expect("identical counters agree");
    assert_accounting(&on, &off);
    let fail_on = run(&counter_iface("ctr-broken", true), true).expect_err("diverges at n = 3");
    let fail_off = run(&counter_iface("ctr-broken", true), false).expect_err("diverges at n = 3");
    assert!(matches!(fail_on, LayerError::Mismatch { .. }));
    assert_eq!(fail_on.to_string(), fail_off.to_string());
}

// ---------------------------------------------------------------------------
// Property tests: POR soundness on randomly assembled grids.
// ---------------------------------------------------------------------------

use proptest::prelude::*;

/// Builds a grid from encoded player choices for the three environment
/// pids: `0` = no player (opaque), `1`/`2` = scratch threads on one of
/// two locations (same code twice ⇒ overlapping footprints ⇒ dependent),
/// `3` = a ticket contender. Random mixes exercise every shape of the
/// independence relation, from fully dependent to fully reduced.
fn random_contexts(len: usize, choices: [u8; 3]) -> Vec<EnvContext> {
    let total = 4_usize.pow(len as u32);
    let mut gen = ContextGen::new(vec![Pid(0), Pid(1), Pid(2), Pid(3)])
        .with_schedule_len(len)
        .with_max_contexts(total)
        .with_por(true);
    for (i, &c) in choices.iter().enumerate() {
        let pid = Pid(1 + i as u32);
        gen = match c {
            0 => gen,
            1 => gen.with_player(pid, Arc::new(ScratchPlayer::new(pid, Loc(100)))),
            2 => gen.with_player(pid, Arc::new(ScratchPlayer::new(pid, Loc(101)))),
            _ => gen.with_player(pid, Arc::new(TicketEnvPlayer::new(pid, Loc(0), 1))),
        };
    }
    gen.contexts()
}

/// The differential invariant for Ok verdicts: same rule and description
/// (including any embedded worst-case metrics), full-grid runs reduce
/// nothing, and the reduced run accounts for every full-grid case.
fn assert_same_ok(on: &Obligation, off: &Obligation) {
    assert_eq!(on.rule, off.rule);
    assert_eq!(on.description, off.description);
    assert_eq!(off.cases_reduced, 0, "POR off must reduce nothing");
    assert_eq!(
        on.cases_checked + on.cases_skipped + on.cases_reduced,
        off.cases_checked + off.cases_skipped
    );
}

/// The differential invariant for arbitrary verdicts: both sides agree on
/// Ok/Err, Ok sides satisfy the accounting identity, Err sides render the
/// same first-failure evidence.
fn assert_same_verdict(on: &Result<Obligation, LayerError>, off: &Result<Obligation, LayerError>) {
    match (on, off) {
        (Ok(a), Ok(b)) => assert_same_ok(a, b),
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        (a, b) => panic!("verdicts diverged: {a:?} (POR) vs {b:?} (full)"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// POR soundness on random stacks: for every random assignment of
    /// environment players (two object kinds over shared or disjoint
    /// footprints), all five bounded checkers return the same verdict and
    /// evidence on the reduced grid as on the full grid.
    #[test]
    fn por_preserves_all_five_checkers_on_random_grids(
        len in 2_usize..4,
        c1 in 0_u8..4,
        c2 in 0_u8..4,
        c3 in 0_u8..4,
        broken in 0_u8..2,
    ) {
        let contexts = random_contexts(len, [c1, c2, c3]);
        let broken = broken == 1;

        // 1. Prim refinement (`check_prim_refinement`).
        let sim = |por: bool| {
            check_prim_refinement(
                &counter_iface("ctr-impl", broken),
                "bump",
                &counter_iface("ctr-spec", false),
                "bump",
                &SimRelation::identity(),
                Pid(0),
                &contexts,
                &[vec![], vec![], vec![]],
                &SimOptions::default().with_por(por),
            )
        };
        match (sim(true), sim(false)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(b.cases_reduced, 0);
                prop_assert_eq!(
                    a.cases_checked + a.cases_skipped + a.cases_reduced,
                    b.cases_checked + b.cases_skipped
                );
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "sim verdicts diverged: {:?} vs {:?}", a, b),
        }

        // 2. Liveness: generous bound when honest, zero bound when broken.
        let bound = if broken { 0 } else { 64 };
        let live = |por: bool| {
            check_liveness_por(
                &wait_for_iface(1), "wait", &[], Pid(0), &contexts, bound, 100_000, por,
            )
        };
        assert_same_verdict(&live(true), &live(false));

        // 3. Race freedom: private location when honest, shared when broken.
        {
            use ccal::machine::mx86::mx86_hw_interface;
            let focused = PidSet::from_pids([Pid(0), Pid(1)]);
            let loc = |c: u32| if broken { Loc(0) } else { Loc(50 + c) };
            let mut programs = BTreeMap::new();
            for c in 0..2 {
                programs.insert(
                    Pid(c),
                    vec![
                        ("pull".to_owned(), vec![Val::Loc(loc(c))]),
                        ("push".to_owned(), vec![Val::Loc(loc(c))]),
                    ],
                );
            }
            // Focused pids must not also be environment players.
            if c1 == 0 {
                let race = |por: bool| {
                    check_race_freedom_por(
                        &mx86_hw_interface(), &focused, &programs, &contexts, 50_000, por,
                    )
                };
                assert_same_verdict(&race(true), &race(false));
            }
        }

        // 4. Linearizability of the atomic queue.
        {
            let focused = PidSet::from_pids([Pid(0)]);
            let mut programs = BTreeMap::new();
            programs.insert(
                Pid(0),
                vec![
                    ("enq".to_owned(), vec![Val::Int(0), Val::Int(10)]),
                    ("deq".to_owned(), vec![Val::Int(0)]),
                ],
            );
            let iface = atomic_queue_iface(if broken { Some(999) } else { None });
            let linz = |por: bool| {
                check_linearizability_por(
                    &iface,
                    &focused,
                    &programs,
                    &SimRelation::identity(),
                    &*fifo_history_validator("deq"),
                    &contexts,
                    100_000,
                    por,
                )
            };
            assert_same_verdict(&linz(true), &linz(false));
        }

        // 5. Sequence refinement of the counter pair.
        {
            let scripts = vec![vec![("bump".to_owned(), vec![]); 4]];
            let seq = |por: bool| {
                check_sequence_refinement_por(
                    &counter_iface("ctr-impl", broken),
                    &counter_iface("ctr-spec", false),
                    &SimRelation::identity(),
                    Pid(0),
                    &contexts,
                    &scripts,
                    100_000,
                    por,
                )
            };
            assert_same_verdict(&seq(true), &seq(false));
        }
    }
}
