//! Differential tests for the prefix-sharing lower-run exploration
//! (`ccal_core::prefix`): running any bounded checker with the
//! schedule-prefix trie on must be *observationally invisible* — the same
//! verdict, the same case accounting (checked/skipped/reduced), the same
//! first-failure case index, and bit-identical captured logs as the
//! memo-free engine, across serial and parallel workers and with the
//! partial-order reduction on or off. Mirrors `tests/por_differential.rs`
//! along the sharing axis, across all five bounded checkers. Each
//! comparison runs twice more with deep sharing (the query-point snapshot
//! trie, `ccal_core::prefix::SnapshotTrie`) off and on, so forked-resume
//! suffix execution is held to the same invisibility contract.

use std::collections::BTreeMap;
use std::sync::Arc;

use ccal::core::calculus::{LayerError, Obligation};
use ccal::core::sim::{SimEvidence, SimFailure};
use ccal::core::contexts::ContextGen;
use ccal::core::env::EnvContext;
use ccal::core::event::EventKind;
use ccal::core::id::{Loc, Pid, PidSet, QId};
use ccal::core::layer::{LayerInterface, PrimCtx, PrimRun, PrimSpec, PrimStep};
use ccal::core::machine::MachineError;
use ccal::core::sim::{check_prim_refinement, SimOptions, SimRelation};
use ccal::core::log::Log;
use ccal::core::rely::{Conditions, Invariant, RelyGuarantee};
use ccal::core::strategy::ScratchPlayer;
use ccal::core::val::Val;
use ccal::objects::ticket::TicketEnvPlayer;
use ccal::verifier::{
    check_linearizability_tuned, check_liveness_tuned, check_race_freedom_tuned,
    check_sequence_refinement_tuned, fifo_history_validator,
};

/// The engine configurations every checker is compared across: the
/// reference is sharing off; each (workers, por) combination with sharing
/// on must be indistinguishable from the matching memo-free run.
const WORKERS: [usize; 2] = [1, 4];
const POR: [bool; 2] = [false, true];

/// A grid with mixed sharing behavior: the contexts are full-script
/// keyed, the contender forces some lower runs to consume the whole
/// schedule while others finish (and memoize) early, and the scratch
/// threads make the grid POR-reducible.
fn grid(len: usize) -> Vec<EnvContext> {
    let total = 4_usize.pow(len as u32);
    ContextGen::new(vec![Pid(0), Pid(1), Pid(2), Pid(3)])
        .with_player(Pid(1), Arc::new(TicketEnvPlayer::new(Pid(1), Loc(0), 1)))
        .with_player(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), Loc(100))))
        .with_player(Pid(3), Arc::new(ScratchPlayer::new(Pid(3), Loc(101))))
        .with_schedule_len(len)
        .with_max_contexts(total)
        .with_por(true)
        .contexts()
}

/// Asserts that the shared run is indistinguishable from the memo-free
/// reference with the same POR setting: identical verdict (`Obligation`s
/// compare field-by-field, so checked/skipped/reduced counts must all
/// match) and identical first-failure evidence, including captured logs
/// (`Debug` formatting renders every event).
fn assert_invisible(
    label: &str,
    reference: &Result<Obligation, LayerError>,
    shared: &Result<Obligation, LayerError>,
) {
    match (reference, shared) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{label}: obligation drifted under sharing"),
        (Err(a), Err(b)) => {
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{label}: failure evidence drifted under sharing"
            );
        }
        (a, b) => panic!("{label}: verdicts diverged: {a:?} (reference) vs {b:?} (shared)"),
    }
}

/// Same contract for the simulation checker, whose evidence type carries
/// the probe suite rather than an `Obligation`: both sides are compared
/// through their `Debug` rendering, which spells out every case count,
/// every probe log, and (on failure) both captured logs event by event.
fn assert_sim_invisible(
    label: &str,
    reference: &Result<SimEvidence, Box<SimFailure>>,
    shared: &Result<SimEvidence, Box<SimFailure>>,
) {
    match (reference, shared) {
        (Ok(a), Ok(b)) => assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{label}: sim evidence drifted under sharing"
        ),
        (Err(a), Err(b)) => assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{label}: sim counterexample drifted under sharing"
        ),
        (a, b) => panic!("{label}: sim verdicts diverged: {a:?} (reference) vs {b:?} (shared)"),
    }
}

fn counter_iface(name: &str, broken: bool) -> LayerInterface {
    LayerInterface::builder(name)
        .prim(PrimSpec::atomic("bump", move |ctx, _| {
            let n = ctx.abs.get_or_undef("n").as_int().unwrap_or(0) + 1;
            ctx.abs.set("n", Val::Int(n));
            ctx.emit(EventKind::Prim("bump".into(), vec![]));
            Ok(Val::Int(if broken && n >= 3 { n + 1 } else { n }))
        }))
        .build()
}

#[test]
fn sim_refinement_is_identical_with_and_without_sharing() {
    let contexts = grid(3);
    // 6 argument vectors so the memo's inner (argument) dimension is
    // exercised alongside the context dimension; broken for args ≥ 4 so
    // the index-least failing case is in the middle of the grid.
    let lower = LayerInterface::builder("LD")
        .prim(PrimSpec::atomic("op", |ctx, args| {
            ctx.emit(EventKind::Prim("op".into(), vec![args[0].clone()]));
            Ok(args[0].clone())
        }))
        .build();
    let upper = |broken: bool| {
        LayerInterface::builder("UD")
            .prim(PrimSpec::atomic("op", move |ctx, args| {
                ctx.emit(EventKind::Prim("op".into(), vec![args[0].clone()]));
                let n = args[0].as_int()?;
                Ok(Val::Int(if broken && n >= 4 { n + 1 } else { n }))
            }))
            .build()
    };
    let args: Vec<Vec<Val>> = (0..6).map(|i| vec![Val::Int(i)]).collect();
    for broken in [false, true] {
        let up = upper(broken);
        let run = |share: bool, deep: bool, workers: usize, por: bool| {
            check_prim_refinement(
                &lower,
                "op",
                &up,
                "op",
                &SimRelation::identity(),
                Pid(0),
                &contexts,
                &args,
                &SimOptions::default()
                    .with_prefix_share(share)
                    .with_deep_share(deep)
                    .with_workers(workers)
                    .with_por(por),
            )
        };
        for por in POR {
            let reference = run(false, false, 1, por);
            for workers in WORKERS {
                for deep in [false, true] {
                    let shared = run(true, deep, workers, por);
                    assert_sim_invisible(
                        &format!("sim broken={broken} deep={deep} workers={workers} por={por}"),
                        &reference,
                        &shared,
                    );
                }
            }
            if broken {
                let failure = reference.as_ref().expect_err("broken for args >= 4");
                assert!(
                    format!("{failure}").contains("args #4"),
                    "first failure must be the index-least case, got {failure}"
                );
            }
        }
    }
}

/// A lower interface whose `gate` setup primitive queries the environment
/// until a non-scheduling event exists — so setup consumes a
/// schedule-dependent number of slots — under a rely condition violated
/// exactly when `Pid(2)` is the *first* environment pid to act (a
/// predicate that is decided within the consumed window and stable
/// afterwards). Contexts scheduling pid 2 first skip *during setup* at
/// prefix depth ≥ 1; the memoized skip must stay keyed at that depth (a
/// depth-0 entry would leak the skip to every schedule in the family —
/// the regression behind
/// `setup_skips_and_failures_stay_keyed_at_their_consumed_depth`).
fn gated_lower_iface() -> LayerInterface {
    struct Gate;
    impl PrimRun for Gate {
        fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
            if !ctx.log.without_sched().is_empty() {
                Ok(PrimStep::Done(Val::Unit))
            } else {
                Ok(PrimStep::Query)
            }
        }
    }
    LayerInterface::builder("L-gate")
        .prim(PrimSpec::strategy("gate", true, |_, _| Box::new(Gate)))
        .prim(PrimSpec::atomic("op", |ctx, args| {
            ctx.emit(EventKind::Prim("op".into(), vec![args[0].clone()]));
            Ok(args[0].clone())
        }))
        .conditions(RelyGuarantee::new(
            Conditions::none().with(Invariant::new("pid2-not-first", |_, log: &Log| {
                log.iter()
                    .find(|e| !e.is_sched())
                    .is_none_or(|e| e.pid != Pid(2))
            })),
            Conditions::none(),
        ))
        .build()
}

fn gated_upper_iface(broken: bool) -> LayerInterface {
    LayerInterface::builder("U-gate")
        .prim(PrimSpec::atomic("gate", |_, _| Ok(Val::Unit)))
        .prim(PrimSpec::atomic("op", move |ctx, args| {
            ctx.emit(EventKind::Prim("op".into(), vec![args[0].clone()]));
            let n = args[0].as_int()?;
            Ok(Val::Int(if broken && n >= 1 { n + 1 } else { n }))
        }))
        .build()
}

/// Regression: a memoized setup-phase skip (or failure) that consumed
/// `d > 0` schedule slots must be re-cached for other argument indices at
/// depth `d`, not at the empty prefix — a depth-0 entry matches every
/// script of the family, so contexts whose schedules diverge inside the
/// setup window would inherit the wrong outcome and break sharing
/// invisibility.
#[test]
fn setup_skips_and_failures_stay_keyed_at_their_consumed_depth() {
    // Every environment pid acts every turn, so which pid the script
    // schedules first decides whether setup skips (pid 2 first), succeeds
    // (pids 1, 3 first), or keeps consuming slots (pid 0 — the focused
    // pid — until the round-robin tail lets an environment pid act).
    let contexts: Vec<EnvContext> = ContextGen::new(vec![Pid(0), Pid(1), Pid(2), Pid(3)])
        .with_player(Pid(1), Arc::new(ScratchPlayer::new(Pid(1), Loc(100))))
        .with_player(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), Loc(101))))
        .with_player(Pid(3), Arc::new(ScratchPlayer::new(Pid(3), Loc(102))))
        .with_schedule_len(2)
        .with_max_contexts(16)
        .with_por(true)
        .contexts();
    let lower = gated_lower_iface();
    // Two argument vectors: the poisoning path needs an inner index > 0
    // that replays the memoized setup outcome.
    let args: Vec<Vec<Val>> = (0..2).map(|i| vec![Val::Int(i)]).collect();
    for broken in [false, true] {
        let upper = gated_upper_iface(broken);
        let run = |share: bool, deep: bool, workers: usize, por: bool| {
            let mut opts = SimOptions::default()
                .with_prefix_share(share)
                .with_deep_share(deep)
                .with_workers(workers)
                .with_por(por);
            opts.setup = vec![("gate".to_owned(), Vec::new())];
            check_prim_refinement(
                &lower,
                "op",
                &upper,
                "op",
                &SimRelation::identity(),
                Pid(0),
                &contexts,
                &args,
                &opts,
            )
        };
        for por in POR {
            let reference = run(false, false, 1, por);
            if !broken {
                // The grid must mix skipping and non-skipping setups, or
                // the scenario exercises nothing.
                let ev = reference.as_ref().expect("honest pair verifies");
                assert!(ev.cases_skipped > 0, "some setups must skip");
                assert!(ev.cases_checked > 0, "some setups must succeed");
            }
            for workers in WORKERS {
                for deep in [false, true] {
                    assert_sim_invisible(
                        &format!(
                            "gated-setup broken={broken} deep={deep} workers={workers} por={por}"
                        ),
                        &reference,
                        &run(true, deep, workers, por),
                    );
                }
            }
        }
    }
}

/// A primitive that queries the environment until `k` non-scheduling
/// events exist in the log, then finishes — the liveness workload.
fn wait_for_iface(k: usize) -> LayerInterface {
    struct WaitFor(usize);
    impl PrimRun for WaitFor {
        fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
            if ctx.log.without_sched().len() >= self.0 {
                ctx.emit(EventKind::Prim("done".into(), vec![]));
                Ok(PrimStep::Done(Val::Unit))
            } else {
                Ok(PrimStep::Query)
            }
        }
    }
    LayerInterface::builder("L-wait")
        .prim(PrimSpec::strategy("wait", true, move |_, _| {
            Box::new(WaitFor(k))
        }))
        .build()
}

#[test]
fn liveness_is_identical_with_and_without_sharing() {
    let contexts = grid(3);
    for bound in [64, 0] {
        let run = |share: bool, deep: bool, workers: usize, por: bool| {
            check_liveness_tuned(
                &wait_for_iface(1),
                "wait",
                &[],
                Pid(0),
                &contexts,
                bound,
                100_000,
                workers,
                por,
                share,
                deep,
            )
        };
        for por in POR {
            let reference = run(false, false, 1, por);
            for workers in WORKERS {
                for deep in [false, true] {
                    assert_invisible(
                        &format!("live bound={bound} deep={deep} workers={workers} por={por}"),
                        &reference,
                        &run(true, deep, workers, por),
                    );
                }
            }
        }
    }
}

#[test]
fn race_freedom_is_identical_with_and_without_sharing() {
    use ccal::machine::mx86::mx86_hw_interface;
    let contexts = grid(3);
    let focused = PidSet::from_pids([Pid(0)]);
    for broken in [false, true] {
        // Private location when honest; shared with a (racy) second
        // focused pid when broken.
        let pids = if broken {
            PidSet::from_pids([Pid(0), Pid(1)])
        } else {
            focused.clone()
        };
        let contexts = if broken {
            // Focused pids must not also be environment players.
            ContextGen::new(vec![Pid(0), Pid(1), Pid(2), Pid(3)])
                .with_player(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), Loc(100))))
                .with_player(Pid(3), Arc::new(ScratchPlayer::new(Pid(3), Loc(101))))
                .with_schedule_len(3)
                .with_max_contexts(64)
                .with_por(true)
                .contexts()
        } else {
            contexts.clone()
        };
        let mut programs = BTreeMap::new();
        let n = if broken { 2 } else { 1 };
        for c in 0..n {
            let loc = if broken { Loc(0) } else { Loc(50) };
            programs.insert(
                Pid(c),
                vec![
                    ("pull".to_owned(), vec![Val::Loc(loc)]),
                    ("push".to_owned(), vec![Val::Loc(loc)]),
                ],
            );
        }
        let run = |share: bool, deep: bool, workers: usize, por: bool| {
            check_race_freedom_tuned(
                &mx86_hw_interface(),
                &pids,
                &programs,
                &contexts,
                50_000,
                workers,
                por,
                share,
                deep,
            )
        };
        for por in POR {
            let reference = run(false, false, 1, por);
            for workers in WORKERS {
                for deep in [false, true] {
                    assert_invisible(
                        &format!("race broken={broken} deep={deep} workers={workers} por={por}"),
                        &reference,
                        &run(true, deep, workers, por),
                    );
                }
            }
        }
    }
}

fn atomic_queue_iface(deq_ret: Option<i64>) -> LayerInterface {
    let mut b = LayerInterface::builder("Lq").prim(PrimSpec::atomic("enq", |ctx, args| {
        let q = QId(args[0].as_int()? as u32);
        ctx.emit(EventKind::EnQ(q, args[1].clone()));
        Ok(Val::Unit)
    }));
    b = match deq_ret {
        None => b.prim(PrimSpec::atomic("deq", |ctx, args| {
            let q = QId(args[0].as_int()? as u32);
            ctx.emit(EventKind::DeQ(q));
            Ok(ccal::core::replay::deq_result(ctx.log, ctx.log.len() - 1))
        })),
        Some(k) => b.prim(PrimSpec::atomic("deq", move |ctx, args| {
            let q = QId(args[0].as_int()? as u32);
            ctx.emit(EventKind::DeQ(q));
            Ok(Val::Int(k))
        })),
    };
    b.build()
}

#[test]
fn linearizability_is_identical_with_and_without_sharing() {
    let contexts = grid(3);
    let focused = PidSet::from_pids([Pid(0)]);
    let mut programs = BTreeMap::new();
    programs.insert(
        Pid(0),
        vec![
            ("enq".to_owned(), vec![Val::Int(0), Val::Int(10)]),
            ("deq".to_owned(), vec![Val::Int(0)]),
        ],
    );
    for broken in [false, true] {
        let iface = atomic_queue_iface(if broken { Some(999) } else { None });
        let run = |share: bool, deep: bool, workers: usize, por: bool| {
            check_linearizability_tuned(
                &iface,
                &focused,
                &programs,
                &SimRelation::identity(),
                &*fifo_history_validator("deq"),
                &contexts,
                100_000,
                workers,
                por,
                share,
                deep,
            )
        };
        for por in POR {
            let reference = run(false, false, 1, por);
            for workers in WORKERS {
                for deep in [false, true] {
                    assert_invisible(
                        &format!("linz broken={broken} deep={deep} workers={workers} por={por}"),
                        &reference,
                        &run(true, deep, workers, por),
                    );
                }
            }
        }
    }
}

#[test]
fn sequence_refinement_is_identical_with_and_without_sharing() {
    let contexts = grid(3);
    // Two scripts so the memo's inner (script) dimension is exercised.
    let scripts = vec![
        vec![("bump".to_owned(), vec![]); 4],
        vec![("bump".to_owned(), vec![]); 2],
    ];
    for broken in [false, true] {
        let impl_iface = counter_iface("ctr-impl", broken);
        let spec_iface = counter_iface("ctr-spec", false);
        let run = |share: bool, deep: bool, workers: usize, por: bool| {
            check_sequence_refinement_tuned(
                &impl_iface,
                &spec_iface,
                &SimRelation::identity(),
                Pid(0),
                &contexts,
                &scripts,
                100_000,
                workers,
                por,
                share,
                deep,
            )
        };
        for por in POR {
            let reference = run(false, false, 1, por);
            for workers in WORKERS {
                for deep in [false, true] {
                    assert_invisible(
                        &format!("seqref broken={broken} deep={deep} workers={workers} por={por}"),
                        &reference,
                        &run(true, deep, workers, por),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Property tests: sharing invisibility on randomly assembled grids.
// ---------------------------------------------------------------------------

use proptest::prelude::*;

/// Builds a grid from encoded player choices for the three environment
/// pids, as in `por_differential`: `0` = opaque, `1`/`2` = scratch
/// threads, `3` = a ticket contender. The mix varies how much of the
/// schedule each lower run consumes — and therefore how much the trie
/// can share.
fn random_contexts(len: usize, choices: [u8; 3]) -> Vec<EnvContext> {
    let total = 4_usize.pow(len as u32);
    let mut gen = ContextGen::new(vec![Pid(0), Pid(1), Pid(2), Pid(3)])
        .with_schedule_len(len)
        .with_max_contexts(total)
        .with_por(true);
    for (i, &c) in choices.iter().enumerate() {
        let pid = Pid(1 + i as u32);
        gen = match c {
            0 => gen,
            1 => gen.with_player(pid, Arc::new(ScratchPlayer::new(pid, Loc(100)))),
            2 => gen.with_player(pid, Arc::new(ScratchPlayer::new(pid, Loc(101)))),
            _ => gen.with_player(pid, Arc::new(TicketEnvPlayer::new(pid, Loc(0), 1))),
        };
    }
    gen.contexts()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sharing invisibility on random stacks: for every random assignment
    /// of environment players and both verdict polarities, all five
    /// bounded checkers return identical results with the trie on and
    /// off, serial and parallel, POR on and off.
    #[test]
    fn sharing_is_invisible_for_all_five_checkers_on_random_grids(
        len in 2_usize..4,
        c1 in 0_u8..4,
        c2 in 0_u8..4,
        c3 in 0_u8..4,
        broken in 0_u8..2,
        knobs in 0_u8..8,
    ) {
        let contexts = random_contexts(len, [c1, c2, c3]);
        let broken = broken == 1;
        let por = knobs & 1 == 1;
        let workers = if knobs & 2 == 2 { 4 } else { 1 };
        let deep = knobs & 4 == 4;

        // 1. Prim refinement.
        let sim = |share: bool, workers: usize| {
            check_prim_refinement(
                &counter_iface("ctr-impl", broken),
                "bump",
                &counter_iface("ctr-spec", false),
                "bump",
                &SimRelation::identity(),
                Pid(0),
                &contexts,
                &[vec![], vec![], vec![]],
                &SimOptions::default()
                    .with_prefix_share(share)
                    .with_deep_share(deep)
                    .with_workers(workers)
                    .with_por(por),
            )
        };
        assert_sim_invisible("sim", &sim(false, 1), &sim(true, workers));

        // 2. Liveness.
        let bound = if broken { 0 } else { 64 };
        let live = |share: bool, workers: usize| {
            check_liveness_tuned(
                &wait_for_iface(1), "wait", &[], Pid(0), &contexts, bound, 100_000,
                workers, por, share, deep,
            )
        };
        assert_invisible("live", &live(false, 1), &live(true, workers));

        // 3. Race freedom (focused pids must not be environment players).
        if c1 == 0 {
            use ccal::machine::mx86::mx86_hw_interface;
            let focused = PidSet::from_pids([Pid(0), Pid(1)]);
            let loc = |c: u32| if broken { Loc(0) } else { Loc(50 + c) };
            let mut programs = BTreeMap::new();
            for c in 0..2 {
                programs.insert(
                    Pid(c),
                    vec![
                        ("pull".to_owned(), vec![Val::Loc(loc(c))]),
                        ("push".to_owned(), vec![Val::Loc(loc(c))]),
                    ],
                );
            }
            let race = |share: bool, workers: usize| {
                check_race_freedom_tuned(
                    &mx86_hw_interface(), &focused, &programs, &contexts, 50_000,
                    workers, por, share, deep,
                )
            };
            assert_invisible("race", &race(false, 1), &race(true, workers));
        }

        // 4. Linearizability of the atomic queue.
        {
            let focused = PidSet::from_pids([Pid(0)]);
            let mut programs = BTreeMap::new();
            programs.insert(
                Pid(0),
                vec![
                    ("enq".to_owned(), vec![Val::Int(0), Val::Int(10)]),
                    ("deq".to_owned(), vec![Val::Int(0)]),
                ],
            );
            let iface = atomic_queue_iface(if broken { Some(999) } else { None });
            let linz = |share: bool, workers: usize| {
                check_linearizability_tuned(
                    &iface,
                    &focused,
                    &programs,
                    &SimRelation::identity(),
                    &*fifo_history_validator("deq"),
                    &contexts,
                    100_000,
                    workers,
                    por,
                    share,
                    deep,
                )
            };
            assert_invisible("linz", &linz(false, 1), &linz(true, workers));
        }

        // 5. Sequence refinement of the counter pair.
        {
            let scripts = vec![vec![("bump".to_owned(), vec![]); 4]];
            let seq = |share: bool, workers: usize| {
                check_sequence_refinement_tuned(
                    &counter_iface("ctr-impl", broken),
                    &counter_iface("ctr-spec", false),
                    &SimRelation::identity(),
                    Pid(0),
                    &contexts,
                    &scripts,
                    100_000,
                    workers,
                    por,
                    share,
                    deep,
                )
            };
            assert_invisible("seqref", &seq(false, 1), &seq(true, workers));
        }
    }
}
