//! Cross-crate property-based tests: the load-bearing theorems hold on
//! randomly generated programs and schedules, not just the hand-picked
//! ones.

use std::collections::BTreeMap;

use ccal::core::conc::ThreadScript;
use ccal::core::event::EventKind;
use ccal::core::id::{Loc, Pid};
use ccal::core::log::Log;
use ccal::core::val::Val;
use ccal::machine::linking::check_multicore_linking;
use ccal::machine::mx86::Mx86Program;
use proptest::prelude::*;

/// A random per-CPU script over the race-free subset of the hardware
/// primitives: ticket-lock ops on a shared word plus pull/push on a
/// CPU-private location.
fn cpu_script(cpu: u32) -> impl Strategy<Value = ThreadScript> {
    let own_loc = Loc(10 + cpu);
    proptest::collection::vec(0_u8..4, 0..5).prop_map(move |ops| {
        let mut script = ThreadScript::new();
        for op in ops {
            match op {
                0 => script.push(("fai_t".to_owned(), vec![Val::Loc(Loc(0))])),
                1 => script.push(("get_n".to_owned(), vec![Val::Loc(Loc(0))])),
                2 => script.push(("inc_n".to_owned(), vec![Val::Loc(Loc(0))])),
                _ => {
                    script.push(("pull".to_owned(), vec![Val::Loc(own_loc)]));
                    script.push((
                        "mset".to_owned(),
                        vec![Val::Loc(own_loc), Val::Int(i64::from(cpu))],
                    ));
                    script.push(("push".to_owned(), vec![Val::Loc(own_loc)]));
                }
            }
        }
        script
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 3.1 on random programs: every bounded hardware
    /// interleaving is matched by the layer machine.
    #[test]
    fn multicore_linking_holds_on_random_programs(
        s0 in cpu_script(0),
        s1 in cpu_script(1),
    ) {
        let mut program = Mx86Program::new();
        program.insert(Pid(0), s0);
        program.insert(Pid(1), s1);
        let ob = check_multicore_linking(2, &program, 3, 8)
            .expect("Thm 3.1 holds on random programs");
        prop_assert!(ob.cases_checked + ob.cases_skipped > 0);
    }

    /// Ticket replay is a fold: appending any event changes `next` and
    /// `serving` by the expected deltas.
    #[test]
    fn ticket_replay_is_compositional(ops in proptest::collection::vec(0_u8..3, 0..24)) {
        use ccal::core::replay::replay_ticket;
        let b = Loc(0);
        let mut log = Log::new();
        let mut next = 0_u64;
        let mut serving = 0_u64;
        for (i, op) in ops.iter().enumerate() {
            let pid = Pid((i % 3) as u32);
            match op {
                0 => {
                    log.append(ccal::core::event::Event::new(pid, EventKind::FaiT(b)));
                    next += 1;
                }
                1 => {
                    log.append(ccal::core::event::Event::new(pid, EventKind::IncN(b)));
                    serving += 1;
                }
                _ => log.append(ccal::core::event::Event::new(pid, EventKind::GetN(b))),
            }
            let st = replay_ticket(&log, b);
            prop_assert_eq!(st.next, next);
            prop_assert_eq!(st.serving, serving);
        }
    }

    /// The shared queue is linearizable on random two-participant
    /// workloads: every dequeue observes exactly the replayed FIFO front.
    #[test]
    fn shared_queue_random_workloads_are_linearizable(
        ops0 in proptest::collection::vec((0_u8..2, 1_i64..100), 0..4),
        ops1 in proptest::collection::vec((0_u8..2, 1_i64..100), 0..4),
        sched_seed in 0_usize..8,
    ) {
        use ccal::core::conc::ConcurrentMachine;
        use ccal::core::env::EnvContext;
        use ccal::core::id::PidSet;
        use ccal::core::strategy::ScriptScheduler;
        use ccal::objects::sharedq;
        use std::sync::Arc;

        let q = Loc(3);
        let to_script = |ops: Vec<(u8, i64)>| -> ThreadScript {
            ops.into_iter()
                .map(|(kind, v)| {
                    if kind == 0 {
                        ("enQ".to_owned(), vec![Val::Loc(q), Val::Int(v)])
                    } else {
                        ("deQ".to_owned(), vec![Val::Loc(q)])
                    }
                })
                .collect()
        };
        let mut programs = BTreeMap::new();
        programs.insert(Pid(0), to_script(ops0));
        programs.insert(Pid(1), to_script(ops1));

        let module = ccal::clightx::clightx_module("Mq", sharedq::SHAREDQ_SOURCE)
            .expect("parses");
        let iface = module.install(&sharedq::sharedq_underlay()).expect("installs");
        let script: Vec<Pid> = (0..3).map(|i| Pid(((sched_seed >> i) & 1) as u32)).collect();
        let env = EnvContext::new(Arc::new(ScriptScheduler::new(
            script,
            vec![Pid(0), Pid(1)],
        )));
        let machine = ConcurrentMachine::new(
            iface,
            PidSet::from_pids([Pid(0), Pid(1)]),
            env,
        )
        .with_fuel(500_000);
        let out = machine.run(&programs).expect("workload completes");
        let history = sharedq::rq_relation().abstracted(&out.log).expect("abstractable");
        let validate = ccal::verifier::fifo_history_validator("deQ");
        prop_assert!(validate(&history, &out.rets).is_ok());
    }

    /// Thread-safe linking holds on random frame-allocation schedules
    /// (the N-thread generalization of Fig. 12).
    #[test]
    fn threaded_linking_on_random_schedules(
        schedule in proptest::collection::vec((0_u32..5, 0_usize..4), 0..16)
    ) {
        let out = ccal::compcertx::simulate_threaded_linking(&schedule)
            .expect("m1 ⊛ ... ⊛ mN ≃ m");
        let total: usize = schedule.iter().map(|(_, f)| f).sum();
        prop_assert_eq!(out.cpu_memory.nb() as usize, total);
    }

    /// Random arithmetic ClightX programs compile correctly: CompCertX
    /// translation validation never finds a mismatch.
    #[test]
    fn compcertx_validates_random_arithmetic(
        a in -20_i64..20,
        b in 1_i64..20,
        c in -20_i64..20,
    ) {
        use ccal::compcertx::{compcertx, ValidateOptions};
        use ccal::core::contexts::ContextGen;
        let src = format!(
            "int f(int x) {{ int y = x * {a} + {c}; while (y > {b}) {{ y = y - {b}; }} if (y < 0) {{ return -y; }} return y; }}"
        );
        let iface = ccal::core::layer::LayerInterface::builder("L").build();
        let opts = ValidateOptions::new(vec![ContextGen::new(vec![Pid(0)]).round_robin()]);
        let compiled = compcertx("M", &src, &iface, &opts).expect("validates");
        prop_assert!(compiled.certificate.total_cases() > 0);
    }
}
