//! Differential tests for **semantic sharing keys**
//! (`ccal_core::fingerprint::share_key`): keying warm exploration state
//! by lower-machine *content* instead of per-unit identity must be
//! observationally invisible — the same verdicts, the same case
//! accounting, and bit-identical index-least failure evidence — while
//! actually sharing state across content-equal units, and *never*
//! exchanging state between machines whose content differs.
//!
//! Three layers of coverage:
//!
//! 1. **Registry differential**: every known stack is certified twice —
//!    pinned per-unit keys cold (`CCAL_SHARE_SEMANTIC=0`, the old
//!    behavior) vs. semantic keys with one warm map shared across units
//!    exactly as `ccal-certd` runs it — across workers × POR ×
//!    prefix/deep sharing × both ClightX execution tiers.
//! 2. **Checker differential**: all five bounded checkers run on a
//!    "twin" grid — two content-equal context generators concatenated —
//!    once with the twins pinned to distinct families (isolated) and
//!    once pinned to one shared semantic family (cross-twin sharing
//!    live). Verdicts and evidence must be byte-identical.
//! 3. **Hostile aliasing**: two ClightX machines differing only in one
//!    primitive body must produce distinct `ShareKey`s, and a warm state
//!    populated by one must never serve the other — its verdict,
//!    evidence *and work counters* must equal a cold run's.
//!
//! The semantic-sharing override and the engine's sharing counters are
//! process-global, so every test in this binary serializes on one mutex.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use ccal::core::calculus::{LayerError, Obligation};
use ccal::core::contexts::ContextGen;
use ccal::core::env::EnvContext;
use ccal::core::event::EventKind;
use ccal::core::fingerprint::{share_key, ShareKey};
use ccal::core::id::{Loc, Pid, PidSet, QId};
use ccal::core::layer::{LayerInterface, PrimSpec};
use ccal::core::prefix::{self, ShareSemanticOverride};
use ccal::core::sim::{
    check_prim_refinement, SimEvidence, SimFailure, SimOptions, SimRelation, SimWarm,
};
use ccal::core::strategy::ScratchPlayer;
use ccal::core::val::Val;
use ccal::objects::ticket::TicketEnvPlayer;
use ccal::verifier::{
    check_linearizability_tuned, check_liveness_tuned, check_race_freedom_tuned,
    check_sequence_refinement_tuned, fifo_history_validator,
};
use ccal_certd::registry::{self, UnitOutcome, WarmMap};
use ccal_certd::CertParams;

/// Serializes the tests in this binary: the semantic-sharing override and
/// the prefix counters are process-global.
fn serial() -> MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// 1. Registry differential: semantic + warm vs. pinned + cold.
// ---------------------------------------------------------------------------

/// Certifies every unit of `stack` in pipeline order. With `semantic`
/// off, this is the pre-sharing engine: per-unit pinned keys, no warm
/// state. With `semantic` on, units draw warm state from one [`WarmMap`]
/// keyed by their semantic sharing key — the daemon's exact flow — so
/// content-equal units feed each other.
fn certify_stack(stack: &str, params: &CertParams, semantic: bool) -> Vec<UnitOutcome> {
    let _mode = ShareSemanticOverride::force(semantic);
    let warm = WarmMap::new();
    registry::stack_units(stack, params)
        .expect("stack resolves")
        .iter()
        .map(|u| {
            let w = semantic.then(|| warm.get(&u.share));
            registry::run_unit(stack, &u.name, params, None, w.as_ref())
                .expect("unit runs")
        })
        .collect()
}

#[test]
fn registry_verdicts_are_identical_between_semantic_and_pinned_keys() {
    let _guard = serial();
    for stack in ["ticket", "qlock", "scratch"] {
        let mut grid: Vec<CertParams> = Vec::new();
        for bytecode in [true, false] {
            for workers in [1, 4] {
                for por in [true, false] {
                    let mut p = CertParams::default();
                    p.bytecode = bytecode;
                    p.workers = workers;
                    p.por = por;
                    grid.push(p);
                }
            }
        }
        // The prefix/deep sharing axis, at the default corner.
        for (prefix_share, deep_share) in [(true, false), (false, false)] {
            let mut p = CertParams::default();
            p.prefix_share = prefix_share;
            p.deep_share = deep_share;
            grid.push(p);
        }
        for params in &grid {
            let pinned = certify_stack(stack, params, false);
            let shared = certify_stack(stack, params, true);
            assert_eq!(
                pinned, shared,
                "stack `{stack}` drifted under semantic sharing \
                 (workers={} por={} prefix={} deep={} bytecode={})",
                params.workers, params.por, params.prefix_share, params.deep_share,
                params.bytecode
            );
            // The differential only has teeth if both polarities appear:
            // scratch must fail (with rendered index-least evidence held
            // byte-identical above), the lock stacks must certify.
            let failures = pinned.iter().filter(|o| o.failure.is_some()).count();
            if stack == "scratch" {
                assert!(failures > 0, "scratch is the known-failing fixture");
            } else {
                assert_eq!(failures, 0, "stack `{stack}` must certify");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Checker differential on twin grids: shared family vs. pinned twins.
// ---------------------------------------------------------------------------

/// Two content-equal context generators, concatenated. With
/// `family: None` each half keeps its own pinned (process-unique)
/// family — the halves explore in isolation. With `family: Some(f)` both
/// halves are pinned to `f`, so the engine's memo/snapshot keys alias
/// across the halves and the second half can be served by the first —
/// the cross-unit sharing regime in miniature.
fn twin_grid(family: Option<u64>) -> Vec<EnvContext> {
    let half = || {
        ContextGen::new(vec![Pid(0), Pid(1), Pid(2), Pid(3)])
            .with_player(Pid(1), Arc::new(TicketEnvPlayer::new(Pid(1), Loc(0), 1)))
            .with_player(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), Loc(100))))
            .with_player(Pid(3), Arc::new(ScratchPlayer::new(Pid(3), Loc(101))))
            .with_schedule_len(2)
            .with_max_contexts(16)
            .with_por(true)
    };
    let (a, b) = match family {
        Some(f) => (half().with_family(f), half().with_family(f)),
        None => (half(), half()),
    };
    let mut out = a.contexts();
    out.extend(b.contexts());
    out
}

/// A semantic family for the twin grid, derived the production way: from
/// the lower machine's content. (Any stable `u64` would pin the family;
/// going through [`share_key`] keeps the test aligned with how `ccal-certd`
/// derives it.)
fn twin_family(lower: &LayerInterface) -> u64 {
    share_key(
        &[],
        lower,
        Pid(0),
        |h| h.str("ctx.kind", "twin"),
        &SimOptions::default(),
    )
    .family()
}

fn assert_invisible(
    label: &str,
    reference: &Result<Obligation, LayerError>,
    shared: &Result<Obligation, LayerError>,
) {
    match (reference, shared) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{label}: obligation drifted under family sharing"),
        (Err(a), Err(b)) => assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{label}: failure evidence drifted under family sharing"
        ),
        (a, b) => panic!("{label}: verdicts diverged: {a:?} (pinned) vs {b:?} (shared)"),
    }
}

fn assert_sim_invisible(
    label: &str,
    reference: &Result<SimEvidence, Box<SimFailure>>,
    shared: &Result<SimEvidence, Box<SimFailure>>,
) {
    match (reference, shared) {
        (Ok(a), Ok(b)) => assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{label}: sim evidence drifted under family sharing"
        ),
        (Err(a), Err(b)) => assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{label}: sim counterexample drifted under family sharing"
        ),
        (a, b) => panic!("{label}: sim verdicts diverged: {a:?} (pinned) vs {b:?} (shared)"),
    }
}

fn counter_iface(name: &str, broken: bool) -> LayerInterface {
    LayerInterface::builder(name)
        .prim(PrimSpec::atomic("bump", move |ctx, _| {
            let n = ctx.abs.get_or_undef("n").as_int().unwrap_or(0) + 1;
            ctx.abs.set("n", Val::Int(n));
            ctx.emit(EventKind::Prim("bump".into(), vec![]));
            Ok(Val::Int(if broken && n >= 3 { n + 1 } else { n }))
        }))
        .build()
}

const WORKERS: [usize; 2] = [1, 4];
const POR: [bool; 2] = [false, true];
const DEEP: [bool; 2] = [false, true];

#[test]
fn sim_refinement_matches_between_shared_and_pinned_twin_grids() {
    let _guard = serial();
    let lower = LayerInterface::builder("LD")
        .prim(PrimSpec::atomic("op", |ctx, args| {
            ctx.emit(EventKind::Prim("op".into(), vec![args[0].clone()]));
            Ok(args[0].clone())
        }))
        .build();
    let upper = |broken: bool| {
        LayerInterface::builder("UD")
            .prim(PrimSpec::atomic("op", move |ctx, args| {
                ctx.emit(EventKind::Prim("op".into(), vec![args[0].clone()]));
                let n = args[0].as_int()?;
                Ok(Val::Int(if broken && n >= 4 { n + 1 } else { n }))
            }))
            .build()
    };
    let family = twin_family(&lower);
    let args: Vec<Vec<Val>> = (0..6).map(|i| vec![Val::Int(i)]).collect();
    for broken in [false, true] {
        let up = upper(broken);
        let run = |contexts: &[EnvContext], deep: bool, workers: usize, por: bool| {
            check_prim_refinement(
                &lower,
                "op",
                &up,
                "op",
                &SimRelation::identity(),
                Pid(0),
                contexts,
                &args,
                // Case-level dedup off: the twin halves are content-equal,
                // so with dedup on the second half would be answered before
                // the family-keyed memo is ever consulted — family sharing
                // must be the live mechanism here.
                &SimOptions::default()
                    .with_dedup(false)
                    .with_prefix_share(true)
                    .with_deep_share(deep)
                    .with_workers(workers)
                    .with_por(por),
            )
        };
        for por in POR {
            for workers in WORKERS {
                for deep in DEEP {
                    let pinned = run(&twin_grid(None), deep, workers, por);
                    let shared = run(&twin_grid(Some(family)), deep, workers, por);
                    assert_sim_invisible(
                        &format!("sim broken={broken} deep={deep} workers={workers} por={por}"),
                        &pinned,
                        &shared,
                    );
                }
            }
        }
        // Teeth: on a serial deterministic run, the shared-family twins
        // must record strictly more sharing than the pinned twins — the
        // second half is being served by the first. (Honest arm only: the
        // broken arm stops at its index-least failure, which lies in the
        // first half, before any cross-half reuse can happen.)
        if !broken {
            let shares = |contexts: &[EnvContext]| {
                let before = prefix::shared_total();
                let _ = run(contexts, true, 1, true);
                prefix::shared_total() - before
            };
            let pinned_shares = shares(&twin_grid(None));
            let shared_shares = shares(&twin_grid(Some(family)));
            assert!(
                shared_shares > pinned_shares,
                "shared-family twins must actually share across the halves \
                 ({shared_shares} vs {pinned_shares} pinned)"
            );
        }
    }
}

#[test]
fn liveness_matches_between_shared_and_pinned_twin_grids() {
    let _guard = serial();
    use ccal::core::layer::{PrimCtx, PrimRun, PrimStep};
    use ccal::core::machine::MachineError;
    struct WaitFor(usize);
    impl PrimRun for WaitFor {
        fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
            if ctx.log.without_sched().len() >= self.0 {
                ctx.emit(EventKind::Prim("done".into(), vec![]));
                Ok(PrimStep::Done(Val::Unit))
            } else {
                Ok(PrimStep::Query)
            }
        }
    }
    let iface = LayerInterface::builder("L-wait")
        .prim(PrimSpec::strategy("wait", true, move |_, _| {
            Box::new(WaitFor(1))
        }))
        .build();
    let family = twin_family(&iface);
    for bound in [64, 0] {
        let run = |contexts: &[EnvContext], deep: bool, workers: usize, por: bool| {
            check_liveness_tuned(
                &iface, "wait", &[], Pid(0), contexts, bound, 100_000, workers, por, true, deep,
            )
        };
        for por in POR {
            for workers in WORKERS {
                for deep in DEEP {
                    assert_invisible(
                        &format!("live bound={bound} deep={deep} workers={workers} por={por}"),
                        &run(&twin_grid(None), deep, workers, por),
                        &run(&twin_grid(Some(family)), deep, workers, por),
                    );
                }
            }
        }
    }
}

#[test]
fn race_freedom_matches_between_shared_and_pinned_twin_grids() {
    let _guard = serial();
    use ccal::machine::mx86::mx86_hw_interface;
    let iface = mx86_hw_interface();
    let family = twin_family(&iface);
    let focused = PidSet::from_pids([Pid(0)]);
    let mut programs = BTreeMap::new();
    programs.insert(
        Pid(0),
        vec![
            ("pull".to_owned(), vec![Val::Loc(Loc(50))]),
            ("push".to_owned(), vec![Val::Loc(Loc(50))]),
        ],
    );
    let run = |contexts: &[EnvContext], deep: bool, workers: usize, por: bool| {
        check_race_freedom_tuned(
            &iface, &focused, &programs, contexts, 50_000, workers, por, true, deep,
        )
    };
    for por in POR {
        for workers in WORKERS {
            for deep in DEEP {
                assert_invisible(
                    &format!("race deep={deep} workers={workers} por={por}"),
                    &run(&twin_grid(None), deep, workers, por),
                    &run(&twin_grid(Some(family)), deep, workers, por),
                );
            }
        }
    }
}

#[test]
fn linearizability_matches_between_shared_and_pinned_twin_grids() {
    let _guard = serial();
    let queue_iface = |broken: bool| {
        let mut b = LayerInterface::builder("Lq").prim(PrimSpec::atomic("enq", |ctx, args| {
            let q = QId(args[0].as_int()? as u32);
            ctx.emit(EventKind::EnQ(q, args[1].clone()));
            Ok(Val::Unit)
        }));
        b = if broken {
            b.prim(PrimSpec::atomic("deq", |ctx, args| {
                let q = QId(args[0].as_int()? as u32);
                ctx.emit(EventKind::DeQ(q));
                Ok(Val::Int(999))
            }))
        } else {
            b.prim(PrimSpec::atomic("deq", |ctx, args| {
                let q = QId(args[0].as_int()? as u32);
                ctx.emit(EventKind::DeQ(q));
                Ok(ccal::core::replay::deq_result(ctx.log, ctx.log.len() - 1))
            }))
        };
        b.build()
    };
    let focused = PidSet::from_pids([Pid(0)]);
    let mut programs = BTreeMap::new();
    programs.insert(
        Pid(0),
        vec![
            ("enq".to_owned(), vec![Val::Int(0), Val::Int(10)]),
            ("deq".to_owned(), vec![Val::Int(0)]),
        ],
    );
    for broken in [false, true] {
        let iface = queue_iface(broken);
        let family = twin_family(&iface);
        let run = |contexts: &[EnvContext], deep: bool, workers: usize, por: bool| {
            check_linearizability_tuned(
                &iface,
                &focused,
                &programs,
                &SimRelation::identity(),
                &*fifo_history_validator("deq"),
                contexts,
                100_000,
                workers,
                por,
                true,
                deep,
            )
        };
        for por in POR {
            for workers in WORKERS {
                for deep in DEEP {
                    assert_invisible(
                        &format!("linz broken={broken} deep={deep} workers={workers} por={por}"),
                        &run(&twin_grid(None), deep, workers, por),
                        &run(&twin_grid(Some(family)), deep, workers, por),
                    );
                }
            }
        }
    }
}

#[test]
fn sequence_refinement_matches_between_shared_and_pinned_twin_grids() {
    let _guard = serial();
    let scripts = vec![
        vec![("bump".to_owned(), vec![]); 4],
        vec![("bump".to_owned(), vec![]); 2],
    ];
    for broken in [false, true] {
        let impl_iface = counter_iface("ctr-impl", broken);
        let spec_iface = counter_iface("ctr-spec", false);
        let family = twin_family(&impl_iface);
        let run = |contexts: &[EnvContext], deep: bool, workers: usize, por: bool| {
            check_sequence_refinement_tuned(
                &impl_iface,
                &spec_iface,
                &SimRelation::identity(),
                Pid(0),
                contexts,
                &scripts,
                100_000,
                workers,
                por,
                true,
                deep,
            )
        };
        for por in POR {
            for workers in WORKERS {
                for deep in DEEP {
                    assert_invisible(
                        &format!("seqref broken={broken} deep={deep} workers={workers} por={por}"),
                        &run(&twin_grid(None), deep, workers, por),
                        &run(&twin_grid(Some(family)), deep, workers, por),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Hostile aliasing: distinct content must never exchange warm state.
// ---------------------------------------------------------------------------

/// The minimal underlay the aliasing machines run over. `tick` returns a
/// constant so a machine's state after the call is schedule-independent.
fn tick_iface() -> LayerInterface {
    LayerInterface::builder("L-tick")
        .prim(PrimSpec::atomic("tick", |ctx, _| {
            ctx.emit(EventKind::Prim("tick".into(), vec![]));
            Ok(Val::Int(0))
        }))
        .build()
}

/// `op` with one underlay query point; `bump` selects the primitive
/// *body* — the only content difference between the hostile machines.
fn op_source(bump: i64) -> String {
    format!("int op(int x) {{ int t = tick(); return x + t + {bump}; }}")
}

fn op_machine(src: &str) -> LayerInterface {
    ccal::clightx::clightx_module("M", src)
        .expect("op module parses")
        .install(&tick_iface())
        .expect("op module installs")
}

/// The spec the machines are checked against: machine A (`bump = 1`)
/// refines it, machine B (`bump = 2`) must fail. Each machine gets its
/// own spec *name*: the interface name is an upper layer's content
/// identity in the upper-run cache signature, and this test isolates the
/// claim about *lower*-machine state — two checks deliberately sharing
/// one spec would (soundly) share replayed upper runs.
fn op_spec(name: &str) -> LayerInterface {
    LayerInterface::builder(name)
        .prim(PrimSpec::atomic("op", |ctx, args| {
            ctx.emit(EventKind::Prim("tick".into(), vec![]));
            Ok(Val::Int(args[0].as_int()? + 1))
        }))
        .build()
}

/// A 3-pid grid pinned to `family`; content-equal across calls so the
/// *only* thing distinguishing the hostile machines' key spaces is their
/// `ShareKey`.
fn aliasing_grid(family: u64) -> Vec<EnvContext> {
    ContextGen::new(vec![Pid(0), Pid(1), Pid(2)])
        .with_player(Pid(1), Arc::new(ScratchPlayer::new(Pid(1), Loc(100))))
        .with_player(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), Loc(101))))
        .with_schedule_len(2)
        .with_max_contexts(16)
        .with_por(true)
        .with_family(family)
        .contexts()
}

#[test]
fn hostile_aliasing_gets_distinct_keys_and_never_exchanges_state() {
    let _guard = serial();
    let src_a = op_source(1);
    let src_b = op_source(2);
    for bytecode in [true, false] {
        let machine_a = op_machine(&src_a);
        let machine_b = op_machine(&src_b);
        let spec_a = op_spec("U-op-A");
        let spec_b = op_spec("U-op-B");
        let base_opts = SimOptions::default()
            .with_prefix_share(true)
            .with_deep_share(true)
            .with_state_dedup(true)
            .with_bytecode(bytecode)
            .with_workers(1)
            .with_por(true);
        let key_of = |src: &str, iface: &LayerInterface| -> ShareKey {
            share_key(
                &[("M", src)],
                iface,
                Pid(0),
                |h| h.str("ctx.kind", "aliasing"),
                &base_opts,
            )
        };
        // One primitive body differs — the keys (and so the families and
        // every memo/snapshot key derived from them) must differ.
        let key_a = key_of(&src_a, &machine_a);
        let key_b = key_of(&src_b, &machine_b);
        assert_ne!(key_a, key_b, "body-only edits must change the ShareKey");
        assert_ne!(
            key_a.family(),
            key_b.family(),
            "body-only edits must change the sharing family"
        );

        let args: Vec<Vec<Val>> = (0..3).map(|i| vec![Val::Int(i)]).collect();
        // Runs one check and captures the work alongside the verdict: the
        // engine's global share/step counters plus the warm handle's own
        // hit deltas. Serial + deterministic, so equal work means equal
        // counters, exactly.
        let run = |iface: &LayerInterface, spec: &LayerInterface, family: u64, warm: &SimWarm| {
            let (steps0, shared0, deep0) =
                (prefix::steps_total(), prefix::shared_total(), prefix::deep_total());
            let w0 = warm.stats();
            let res = check_prim_refinement(
                iface,
                "op",
                spec,
                "op",
                &SimRelation::identity(),
                Pid(0),
                &aliasing_grid(family),
                &args,
                &base_opts.clone().with_warm(warm.clone()),
            );
            let w1 = warm.stats();
            let work = (
                prefix::steps_total() - steps0,
                prefix::shared_total() - shared0,
                prefix::deep_total() - deep0,
                w1.snapshot_hits - w0.snapshot_hits,
                w1.upper_hits - w0.upper_hits,
            );
            (format!("{res:?}"), work)
        };

        // Machine A populates a warm state...
        let warm = SimWarm::default();
        let (a_cold, a_cold_work) = run(&machine_a, &spec_a, key_a.family(), &warm);
        assert!(a_cold.starts_with("Ok"), "machine A refines its spec: {a_cold}");
        // ...which serves a re-run of A byte-identically (positive
        // control: under the *same* key, the warm state demonstrably
        // shares — so the zero-sharing assertion for B below has teeth).
        let (a_warm, a_warm_work) = run(&machine_a, &spec_a, key_a.family(), &warm);
        assert_eq!(a_cold, a_warm, "warm reuse must be invisible (tier bytecode={bytecode})");
        assert!(
            a_warm_work.1 > a_cold_work.1,
            "same-key warm reuse must share ({a_warm_work:?} vs cold {a_cold_work:?})"
        );

        // Machine B cold: the reference failure and reference work.
        let (b_cold, b_cold_work) = run(&machine_b, &spec_b, key_b.family(), &SimWarm::default());
        assert!(b_cold.starts_with("Err"), "machine B must fail its spec: {b_cold}");
        // Machine B against A's warm state: same failure bytes, same
        // work — not one entry of A's crossed the key boundary.
        let (b_hostile, b_hostile_work) = run(&machine_b, &spec_b, key_b.family(), &warm);
        assert_eq!(
            b_cold, b_hostile,
            "hostile warm state perturbed machine B's evidence (bytecode={bytecode})"
        );
        assert_eq!(
            b_cold_work, b_hostile_work,
            "machine B did different work against A's warm state — \
             state crossed the ShareKey boundary (bytecode={bytecode})"
        );
    }
}

/// The interpreter tier now carries convergence fingerprints
/// (`CRun::state_fp`): with the bytecode tier forced off, convergence
/// dedup must still be (a) observationally invisible and (b) actually
/// live — the gate answers suffixes from the cache.
#[test]
fn interpreter_tier_convergence_dedup_is_live_and_invisible() {
    let _guard = serial();
    // Three query points, so later probes happen at consumed depths > 0 —
    // where schedules that interleave the (commuting) scratch writers in
    // different orders reconverge on one canonical machine state with one
    // remaining suffix. (A single query point only probes at depth 0,
    // where every context still has a distinct suffix.)
    let src = "int op(int x) { int t = tick(); int u = tick(); int v = tick(); \
               return x + t + u + v + 1; }";
    let machine = op_machine(src);
    // Self-refinement: the spec is the machine itself, so lower and upper
    // logs agree event-for-event and the verdict is a clean pass.
    let spec = machine.clone();
    let args: Vec<Vec<Val>> = (0..3).map(|i| vec![Val::Int(i)]).collect();
    // An unpinned (per-call) grid — this test is about the conv cache,
    // not cross-call sharing — with POR *off*: the partial-order
    // reduction prunes exactly the commuting interleavings whose states
    // reconverge, so a reduced grid leaves the gate nothing to collapse.
    let grid = || {
        ContextGen::new(vec![Pid(0), Pid(1), Pid(2)])
            .with_player(Pid(1), Arc::new(ScratchPlayer::new(Pid(1), Loc(100))))
            .with_player(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), Loc(101))))
            .with_schedule_len(3)
            .with_max_contexts(27)
            .with_por(false)
            .contexts()
    };
    let run = |state_dedup: bool| {
        check_prim_refinement(
            &machine,
            "op",
            &spec,
            "op",
            &SimRelation::identity(),
            Pid(0),
            &grid(),
            &args,
            &SimOptions::default()
                .with_prefix_share(true)
                .with_deep_share(true)
                .with_bytecode(false)
                .with_state_dedup(state_dedup)
                .with_workers(1)
                .with_por(false),
        )
    };
    let reference = run(false);
    let converged0 = prefix::converged_total();
    let dedup = run(true);
    let conv_hits = prefix::converged_total() - converged0;
    assert_sim_invisible("interp-conv", &reference, &dedup);
    assert!(
        conv_hits > 0,
        "interpreter-tier runs must reach the convergence gate via \
         CRun::state_fp (got no hits)"
    );
}
